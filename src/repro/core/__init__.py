"""Optimization core: the paper's algorithms and baselines.

Solvers
-------
* :func:`repro.core.fista.fista` / :func:`repro.core.fista.ista` —
  deterministic baselines (paper Alg. 2).
* :func:`repro.core.sfista.sfista` — stochastic variance-reduced FISTA
  (paper Algs. 3–4).
* :func:`repro.core.rc_sfista.rc_sfista` — serial reference of
  RC-SFISTA with iteration overlapping ``k`` and Hessian-reuse ``S``
  (paper Alg. 5).
* :func:`repro.core.sfista_dist.sfista_distributed` /
  :func:`repro.core.rc_sfista_dist.rc_sfista_distributed` — the
  distributed implementations on the simulated cluster (paper Fig. 1).
* :func:`repro.core.prox_newton.proximal_newton` — the outer PN method
  (paper Alg. 1) with pluggable inner solvers.
* :func:`repro.core.cd.coordinate_descent_lasso` — coordinate-descent
  lasso (PN inner-solver alternative and the ProxCoCoA local solver).
* :func:`repro.core.proxcocoa.proxcocoa` — the ProxCoCoA baseline
  (Smith et al. 2015) on the same simulated cluster.
* :func:`repro.core.reference.solve_reference` — high-accuracy optimum
  (the paper's TFOCS stand-in).
"""

from repro.core.proximal import (
    soft_threshold,
    L1Prox,
    L2SquaredProx,
    ElasticNetProx,
    BoxProx,
    ZeroProx,
    GroupL1Prox,
)
from repro.core.model import (
    LOSSES,
    PENALTIES,
    ERMObjective,
    LogisticLoss,
    Regularizer,
    SmoothLoss,
    SquaredHingeLoss,
    SquaredLoss,
    canonical_penalty_spec,
    make_loss,
    make_penalty,
    parse_penalty_spec,
    resolve_objective,
)
from repro.core.objectives import L1LeastSquares, QuadraticModel
from repro.core.results import SolveResult, History
from repro.core.stopping import StoppingCriterion, relative_objective_error
from repro.core.fista import fista, ista
from repro.core.sfista import sfista, GradientEstimator, stochastic_step_size
from repro.core.rc_sfista import rc_sfista
from repro.core.sfista_dist import sfista_distributed
from repro.core.rc_sfista_dist import rc_sfista_distributed
from repro.core.prox_newton import proximal_newton
from repro.core.cd import coordinate_descent_lasso
from repro.core.proxcocoa import proxcocoa
from repro.core.reference import solve_reference
from repro.core.logistic import L1Logistic
from repro.core.path import lasso_path, lambda_max, PathResult
from repro.core.warmstart import WarmStartLadder
from repro.core.rc_sfista_spmd import rc_sfista_spmd
from repro.core.ca_bcd import ca_bcd, ca_bcd_communication
from repro.core.cv import cross_validate_lambda, kfold_indices, CVResult

__all__ = [
    "soft_threshold",
    "L1Prox",
    "L2SquaredProx",
    "ElasticNetProx",
    "BoxProx",
    "ZeroProx",
    "GroupL1Prox",
    "LOSSES",
    "PENALTIES",
    "ERMObjective",
    "SmoothLoss",
    "SquaredLoss",
    "LogisticLoss",
    "SquaredHingeLoss",
    "Regularizer",
    "make_loss",
    "make_penalty",
    "parse_penalty_spec",
    "canonical_penalty_spec",
    "resolve_objective",
    "L1LeastSquares",
    "QuadraticModel",
    "SolveResult",
    "History",
    "StoppingCriterion",
    "relative_objective_error",
    "fista",
    "ista",
    "sfista",
    "GradientEstimator",
    "stochastic_step_size",
    "rc_sfista",
    "sfista_distributed",
    "rc_sfista_distributed",
    "proximal_newton",
    "coordinate_descent_lasso",
    "proxcocoa",
    "solve_reference",
    "L1Logistic",
    "lasso_path",
    "lambda_max",
    "PathResult",
    "WarmStartLadder",
    "rc_sfista_spmd",
    "ca_bcd",
    "ca_bcd_communication",
    "cross_validate_lambda",
    "kfold_indices",
    "CVResult",
]
