"""l1-regularized logistic regression — the general ERM instance of Eq. (1).

The paper frames its problem class as empirical risk minimization
"including logistic regression and regularized least squares" (§2.1). The
headline algorithms specialize to least squares (the sampled Hessian of
Eq. 18 is data-only there), but the proximal Newton machinery (Alg. 1) is
generic: it needs ``F``, ``∇f`` and a Hessian *at the current iterate*.
This module provides that instance:

.. math::

    f(w) = \\frac{1}{m} \\sum_i \\log(1 + e^{-y_i x_i^T w}),
    \\qquad g(w) = λ\\|w\\|_1, \\qquad y_i ∈ \\{-1, +1\\},

with ``∇f(w) = -(1/m) X (y ⊙ σ(-y ⊙ Xᵀw))`` and
``∇²f(w) = (1/m) X D(w) Xᵀ``, ``D_ii = σ_i (1 - σ_i)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import (
    ERMObjective,
    LogisticLoss,
    _log1pexp,
    _matvec_x,
    _matvec_xt,
    _sigmoid,
    make_penalty,
)
from repro.exceptions import ShapeError, ValidationError
from repro.sparse.csr import CSCMatrix, CSRMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive, check_vector

__all__ = ["L1Logistic"]

Matrix = np.ndarray | CSRMatrix | CSCMatrix


class L1Logistic(ERMObjective):
    """l1-regularized logistic regression in the paper's data layout.

    Parameters
    ----------
    X:
        ``(d, m)`` data matrix, one column per sample.
    y:
        Labels in ``{-1, +1}``, shape ``(m,)``.
    lam:
        l1 penalty.

    The interface mirrors :class:`L1LeastSquares` where the semantics
    coincide (``value``/``gradient``/``lipschitz``/``d``/``m``/``lam``), and
    adds :meth:`hessian_at` for curvature at a point — which
    :func:`repro.core.prox_newton.proximal_newton` uses when present.
    """

    def __init__(self, X: Matrix, y: np.ndarray, lam: float) -> None:
        d, m = X.shape
        if d == 0 or m == 0:
            raise ValidationError(f"X must be non-empty, got shape {(d, m)}")
        y = check_vector(y, "y")
        if y.shape != (m,):
            raise ShapeError(f"y must have shape ({m},), got {y.shape}")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValidationError("labels must be in {-1, +1}")
        self.X = X
        self.y = y
        self.lam = check_positive(lam, "lambda", strict=False)
        self.d = d
        self.m = m
        # Model-layer identity: logistic loss + plain l1. The specialized
        # numerics below stay as-is; the generic ERMObjective base
        # contributes max_sample_lipschitz / sampled_hessian_deviation
        # (curvature_bound-scaled), making this problem a first-class
        # citizen of the sampled distributed solvers.
        self._adopt_model(LogisticLoss(), make_penalty("l1", lam=self.lam))

    # ------------------------------------------------------------------ #
    def margins(self, w: np.ndarray) -> np.ndarray:
        """``y ⊙ Xᵀw`` — per-sample classification margins."""
        return self.y * _matvec_xt(self.X, np.asarray(w, dtype=np.float64))

    def smooth_value(self, w: np.ndarray) -> float:
        """``f(w) = (1/m) Σ log(1 + exp(-margin_i))``."""
        return float(np.sum(_log1pexp(-self.margins(w)))) / self.m

    def reg_value(self, w: np.ndarray) -> float:
        return self.lam * float(np.sum(np.abs(w)))

    def value(self, w: np.ndarray) -> float:
        return self.smooth_value(w) + self.reg_value(w)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """``∇f(w) = -(1/m) X (y ⊙ σ(-margins))``."""
        probs = _sigmoid(-self.margins(w))
        return -_matvec_x(self.X, self.y * probs) / self.m

    def hessian_at(self, w: np.ndarray) -> np.ndarray:
        """``∇²f(w) = (1/m) X D Xᵀ`` with ``D = diag(σ(1-σ))`` at ``w``."""
        sig = _sigmoid(self.margins(w))
        weights = sig * (1.0 - sig)
        dense = self.X if isinstance(self.X, np.ndarray) else self.X.to_dense()
        weighted = dense * weights[None, :]
        H = weighted @ dense.T / self.m
        return 0.5 * (H + H.T)

    def lipschitz(self, *, n_iter: int = 100, tol: float = 1e-9, rng: RandomState = 0) -> float:
        """Upper bound ``λmax((1/4m) X Xᵀ)`` (σ(1−σ) ≤ 1/4) via power iteration."""
        gen = as_generator(rng)
        u = gen.standard_normal(self.d)
        u /= np.linalg.norm(u)
        lam_prev = 0.0
        for _ in range(n_iter):
            hu = _matvec_x(self.X, _matvec_xt(self.X, u)) / (4.0 * self.m)
            lam = float(np.dot(u, hu))
            norm = np.linalg.norm(hu)
            if norm == 0:
                return 0.0
            u = hu / norm
            if abs(lam - lam_prev) <= tol * max(1.0, abs(lam)):
                lam_prev = lam
                break
            lam_prev = lam
        return abs(lam_prev)

    def default_step(self, **kwargs: object) -> float:
        L = self.lipschitz(**kwargs)  # type: ignore[arg-type]
        if L <= 0:
            raise ValidationError("cannot derive a step size: the data matrix is zero")
        return 1.0 / L

    def accuracy(self, w: np.ndarray) -> float:
        """Training classification accuracy of ``sign(Xᵀw)``."""
        preds = np.sign(_matvec_xt(self.X, np.asarray(w, dtype=np.float64)))
        preds[preds == 0] = 1.0
        return float(np.mean(preds == self.y))

    def optimality_residual(self, w: np.ndarray) -> float:
        """∞-norm distance of ``−∇f(w)`` from ``∂(λ‖·‖₁)(w)``."""
        w = np.asarray(w, dtype=np.float64)
        grad = self.gradient(w)
        res = np.where(
            w != 0.0,
            np.abs(grad + self.lam * np.sign(w)),
            np.maximum(np.abs(grad) - self.lam, 0.0),
        )
        return float(np.max(res)) if res.size else 0.0
