"""Distributed SFISTA baseline — one allreduce per iteration.

This is the algorithm RC-SFISTA is compared against in Figs. 4–5: identical
arithmetic, but the ``(H_n, R_n)`` blocks are allreduced every iteration,
so latency is paid ``N`` times (Table 1, SFISTA row).

Two communication modes:

* ``"hessian"`` (paper-faithful) — allreduce the ``d² + d`` words of
  ``[H_n | R_n]`` each iteration, matching Table 1's ``O(N d² log P)``
  bandwidth. Required by the PN framing where every rank needs ``H_n``.
* ``"gradient"`` (ablation, DESIGN.md choice #3) — each rank computes its
  local *gradient* contribution and only ``d`` words are allreduced. Not
  compatible with Hessian-reuse, but shows the design space.

Like every distributed solver the baseline runs on the unified
:mod:`repro.runtime`: pass ``runtime=RuntimeConfig(...)`` (or the legacy
individual kwargs) to get fault injection, checkpoint/rollback recovery,
NaN screening, telemetry and metrics — the same resilience surface as
:func:`repro.core.rc_sfista_dist.rc_sfista_distributed`, so the paper
comparison stays apples-to-apples under failures too.
"""

from __future__ import annotations

import numpy as np

from repro.core._dist_common import (
    UPDATE_FLOPS,
    RankWorkspaces,
    distribute_problem,
    hessian_reuse_update,
)
from repro.core.fista import momentum_mu, t_next
from repro.core.model import ERMObjective, resolve_objective
from repro.core.proximal import soft_threshold
from repro.core.results import History, SolveResult
from repro.core.sfista import GradientEstimator, stochastic_step_size
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.distsim.machine import MachineSpec
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryCallback
from repro.runtime import Checkpoint, ResilientLoop, RuntimeConfig, build_host_backend, resolve_runtime
from repro.runtime.backend import ExecutionBackend
from repro.sparse.ops import _select_columns_dense
from repro.utils.rng import RandomState, as_generator, minibatch_size, sample_indices
from repro.utils.validation import check_positive

__all__ = ["sfista_distributed"]


def _epoch_anchor_gradient(
    backend: ExecutionBackend, data, w: np.ndarray, m: int, *, loss=None
) -> np.ndarray:
    """SVRG anchor gradient: local contributions + one d-word allreduce.

    The per-rank contributions go through ``backend.map_ranks`` so a
    real-parallelism backend computes them concurrently; each closure
    touches only its own rank's data, keeping results bit-identical to
    the serial sweep. ``loss=None`` is the legacy squared-loss sweep
    (kept verbatim); a :class:`~repro.core.model.SmoothLoss` computes
    ``(1/m) X ℓ'(Xᵀw, y)`` instead, with identical labels and payload.
    """
    if loss is None:
        def contribution(p: int):
            return data.ranks[p].full_gradient_contribution(w, m)
    else:
        def contribution(p: int):
            return data.ranks[p].loss_gradient_contribution(w, m, loss)
    results = backend.map_ranks(contribution, data.nranks)
    backend.compute([fl for _g, fl in results], label="anchor_gradient")
    return backend.allreduce([g for g, _fl in results], label="allreduce_anchor_grad")


def sfista_distributed(
    problem: ERMObjective,
    nranks: int,
    *,
    machine: str | MachineSpec = "comet_effective",
    b: float = 0.1,
    step_size: float | None = None,
    epochs: int = 1,
    iters_per_epoch: int = 100,
    estimator: GradientEstimator | str = GradientEstimator.SVRG,
    comm_mode: str = "hessian",
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    monitor_every: int = 1,
    restart_momentum: bool = True,
    allreduce_algorithm: str = "recursive_doubling",
    jitter_seed: RandomState = None,
    cluster: BSPCluster | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    recv_timeout: float | None = None,
    checkpoint_every: int = 0,
    on_nan: str | None = None,
    max_recoveries: int = 3,
    adaptive_restart: bool = False,
    telemetry: TelemetryCallback | None = None,
    metrics: MetricsRegistry | None = None,
    runtime: RuntimeConfig | None = None,
) -> SolveResult:
    """Distributed SFISTA on the simulated cluster.

    Returns a :class:`SolveResult` whose ``history`` carries simulated
    times per checkpoint and whose ``cost`` holds the cluster counters
    (critical-path messages/words per rank — the L and W of Table 1).
    Objective monitoring is out of band (not charged).

    ``comm_mode`` picks the *algorithm* (what is reduced: Hessian blocks
    or gradients); the collective payload *encoding* (dense/sparse/auto)
    comes from ``runtime=RuntimeConfig(comm=...)`` and defaults to dense.

    Runtime
    -------
    runtime:
        A :class:`~repro.runtime.RuntimeConfig` bundling machine/comm
        selection, fault injection, retry, checkpointing (every
        ``checkpoint_every`` communication rounds), ``on_nan`` screening,
        ``adaptive_restart``, telemetry and metrics. The individual
        kwargs remain accepted but cannot be combined with ``runtime=``;
        the resilience/observability ones are deprecated as kwargs.
    """
    estimator = GradientEstimator(estimator)
    config = resolve_runtime(
        runtime,
        machine=machine,
        allreduce_algorithm=allreduce_algorithm,
        jitter_seed=jitter_seed,
        cluster=cluster,
        faults=faults,
        retry=retry,
        recv_timeout=recv_timeout,
        checkpoint_every=checkpoint_every,
        on_nan=on_nan,
        max_recoveries=max_recoveries,
        adaptive_restart=adaptive_restart,
        telemetry=telemetry,
        metrics=metrics,
    )
    if comm_mode not in ("hessian", "gradient"):
        raise ValidationError(f"comm_mode must be 'hessian' or 'gradient', got {comm_mode!r}")
    if estimator is GradientEstimator.EXACT:
        raise ValidationError("distributed SFISTA requires a sampled estimator (plain or svrg)")
    if epochs < 1 or iters_per_epoch < 1:
        raise ValidationError("epochs and iters_per_epoch must be >= 1")
    if monitor_every < 1:
        raise ValidationError(f"monitor_every must be >= 1, got {monitor_every}")
    stopping = stopping or StoppingCriterion()
    # Legacy squared+l1 keeps the historical byte-identical branches; any
    # other loss/penalty takes the model-anchored general path with the
    # same payload layout (see rc_sfista_dist).
    resolved = resolve_objective(problem, loss=config.loss, penalty=config.penalty)
    view = resolved.objective
    general = not resolved.legacy
    rng = as_generator(seed)
    mbar = minibatch_size(problem.m, b)
    gamma = (
        check_positive(step_size, "step_size")
        if step_size is not None
        else stochastic_step_size(
            view.lipschitz(),
            problem.m,
            mbar,
            view.max_sample_lipschitz,
            epoch_length=iters_per_epoch if restart_momentum else epochs * iters_per_epoch,
            deviation=view.sampled_hessian_deviation(mbar),
        )
    )
    d = problem.d
    thresh = problem.lam * gamma

    data = distribute_problem(problem, nranks)
    backend = build_host_backend(config, nranks)
    loop = ResilientLoop(backend, config, solver="sfista_distributed")
    loop.step_size = gamma
    stride = d * d + d
    # Reusable scratch (bit-identical to the allocating path): the Gram
    # workspaces (shared, or one per rank under a parallel map) plus one
    # [H_p | R_p] payload buffer per rank. The general path builds
    # curvature-weighted blocks and has no workspace variant.
    workspaces = (
        RankWorkspaces(nranks, d, mbar, parallel=backend.parallel_ranks)
        if config.gram_workspace and not general
        else None
    )
    loop.workspace = workspaces
    hr_bufs = [np.empty(stride) for _ in range(nranks)] if workspaces is not None else None
    loop.start(
        {
            "nranks": nranks,
            "b": b,
            "mbar": mbar,
            "epochs": epochs,
            "iters_per_epoch": iters_per_epoch,
            "estimator": estimator.value,
            "comm_mode": comm_mode,
            "step_size": gamma,
            "loss": resolved.loss.name,
            "penalty": resolved.penalty.spec,
            "comm": config.comm,
            "comm_topology": config.comm_topology,
            "comm_compress": config.comm_compress,
            "machine": backend.machine_name,
            "checkpoint_every": config.checkpoint_every,
            "on_nan": config.on_nan,
        }
    )

    w = np.zeros(d)
    w_prev = w.copy()
    t_prev = 1.0
    history = History()
    prev_obj: float | None = None
    converged = False
    diverged = False
    total_iter = 0
    anchor = w.copy()
    full_grad: np.ndarray | None = None
    rounds_done = 0  # completed allreduce rounds, the checkpoint cadence
    start_epoch = 0
    start_n = 0
    in_epoch = False  # resuming mid-epoch: skip the epoch header

    def capture(epoch: int, next_n: int, mid_epoch: bool) -> Checkpoint:
        return Checkpoint.capture(
            arrays={"w": w, "w_prev": w_prev, "anchor": anchor, "full_grad": full_grad},
            scalars={
                "epoch": epoch,
                "n": next_n,
                "in_epoch": mid_epoch,
                "t_prev": t_prev,
                "prev_obj": prev_obj,
                "total_iter": total_iter,
                "rounds_done": rounds_done,
            },
            rng=rng,
            history_len=len(history),
        )

    def repartition(new_nranks: int, lost_ranks) -> float:
        """Shrink to *new_nranks* after an elastic pool loss (see driver).

        Returns the lost ranks' row-block words (rows of X plus y) that
        must travel to their new owners, charged as recovery traffic.
        """
        nonlocal nranks, data, workspaces, hr_bufs
        moved = float(
            (d + 1) * sum(data.partition.local_size(r) for r in lost_ranks)
        )
        nranks = new_nranks
        data = distribute_problem(problem, new_nranks)
        if workspaces is not None:
            workspaces = RankWorkspaces(
                new_nranks, d, mbar, parallel=backend.parallel_ranks
            )
            loop.workspace = workspaces
            hr_bufs = [np.empty(stride) for _ in range(new_nranks)]
        return moved

    def restore(ck: Checkpoint) -> None:
        nonlocal w, w_prev, t_prev, prev_obj, total_iter, anchor, full_grad
        nonlocal rounds_done, start_epoch, start_n, in_epoch, converged, diverged
        w = ck.array("w")
        w_prev = ck.array("w_prev")
        anchor = ck.array("anchor")
        full_grad = ck.get("full_grad")
        s = ck.scalars
        t_prev = s["t_prev"]
        prev_obj = s["prev_obj"]
        total_iter = s["total_iter"]
        rounds_done = s["rounds_done"]
        start_epoch = s["epoch"]
        start_n = s["n"]
        in_epoch = s["in_epoch"]
        converged = diverged = False
        ck.restore_rng(rng)
        history.truncate(ck.history_len)

    def main_loop() -> None:
        nonlocal w, w_prev, t_prev, prev_obj, converged, diverged, total_iter
        nonlocal anchor, full_grad, rounds_done, in_epoch, start_n
        for epoch in range(start_epoch, epochs):
            if not in_epoch:
                anchor = w.copy()
                full_grad = (
                    loop.screened(
                        lambda: _epoch_anchor_gradient(
                            backend,
                            data,
                            anchor,
                            problem.m,
                            loss=resolved.loss if general else None,
                        ),
                        "anchor gradient allreduce",
                    )
                    if estimator is GradientEstimator.SVRG
                    else None
                )
                if restart_momentum:
                    t_prev = 1.0
                    w_prev = w.copy()
                start_n = 0
            in_epoch = False

            for _n in range(start_n, iters_per_epoch):
                total_iter += 1
                idx = sample_indices(rng, problem.m, mbar)

                t_cur = t_next(t_prev)
                mu = momentum_mu(t_prev, t_cur)
                v = w + mu * (w - w_prev)

                if comm_mode == "hessian" and general:
                    # General path: one [H | g] block linearized at the
                    # momentum point v — same d² + d words as the legacy
                    # payload. step_dir = Hv − R below collapses to the
                    # sampled loss gradient at v (the H transport is the
                    # paper-faithful PN framing: every rank receives H).
                    def build_rank(p: int) -> tuple[np.ndarray, float]:
                        rank_data = data.ranks[p]
                        z_v, fl_z = rank_data.local_predictions(v)
                        if estimator is GradientEstimator.SVRG:
                            z_a, fl_a = rank_data.local_predictions(anchor)
                        else:
                            z_a, fl_a = None, 0.0
                        H_p, g_p, fl = rank_data.model_block_contribution(
                            idx, mbar, d, loss=resolved.loss, z_round=z_v, z_anchor=z_a
                        )
                        return np.concatenate([H_p.ravel(), g_p]), fl_z + fl_a + fl

                    results = backend.map_ranks(build_rank, nranks)
                    packed = [buf for buf, _fl in results]
                    backend.compute([fl for _buf, fl in results], label="hessian_blocks")
                    combined = loop.allreduce(packed, label="allreduce_HR")
                    H = combined[: d * d].reshape(d, d)
                    R = H @ v - combined[d * d :]
                    if estimator is not GradientEstimator.PLAIN:
                        R = R - full_grad  # type: ignore[operator]
                    backend.compute(2.0 * d * d, label="model_rhs")
                    w_new = hessian_reuse_update(
                        H, R, v, gamma=gamma, prox=resolved.penalty.prox
                    )
                    backend.compute(UPDATE_FLOPS(d), label="update")
                elif comm_mode == "hessian":
                    # Stages A+B: local sampled Gram blocks, one closure
                    # per rank (parallel on backends that map ranks for
                    # real; each touches only its own buffers/workspace).
                    def build_rank(p: int) -> tuple[np.ndarray, float]:
                        rank_data = data.ranks[p]
                        if hr_bufs is not None:
                            buf = hr_bufs[p]
                            ws = workspaces[p]
                            H_out = buf[: d * d].reshape(d, d)
                            R_out = buf[d * d :]
                            _, local_idx, fl = rank_data.sampled_hessian_contribution(
                                idx, mbar, d, workspace=ws, out=H_out
                            )
                            if estimator is GradientEstimator.PLAIN:
                                _, fl_r = rank_data.sampled_rhs_contribution(
                                    local_idx, mbar, d, workspace=ws, out=R_out
                                )
                            else:
                                R_out.fill(0.0)
                                fl_r = 0.0
                            return buf, fl + fl_r
                        H_p, local_idx, fl = rank_data.sampled_hessian_contribution(
                            idx, mbar, d
                        )
                        if estimator is GradientEstimator.PLAIN:
                            R_p, fl_r = rank_data.sampled_rhs_contribution(
                                local_idx, mbar, d
                            )
                        else:
                            R_p, fl_r = np.zeros(d), 0.0
                        return np.concatenate([H_p.ravel(), R_p]), fl + fl_r

                    results = backend.map_ranks(build_rank, nranks)
                    packed = [buf for buf, _fl in results]
                    backend.compute([fl for _buf, fl in results], label="hessian_blocks")
                    # Stage C: one allreduce of d² + d words.
                    combined = loop.allreduce(packed, label="allreduce_HR")
                    H = combined[: d * d].reshape(d, d)
                    if estimator is GradientEstimator.PLAIN:
                        R = combined[d * d :]
                    else:  # svrg: R = Hŵ − ∇f(ŵ), replicated arithmetic
                        R = H @ anchor - full_grad  # type: ignore[operator]
                        backend.compute(2.0 * d * d, label="svrg_rhs")
                    w_new = hessian_reuse_update(H, R, v, gamma=gamma, thresh=thresh)
                    backend.compute(UPDATE_FLOPS(d), label="update")
                else:
                    # Gradient mode: local sampled-gradient contributions.
                    def gradient_rank(p: int) -> tuple[np.ndarray, float]:
                        rank_data = data.ranks[p]
                        local_idx = rank_data._restrict(idx)
                        if local_idx.size == 0:
                            return np.zeros(d), 0.0
                        if workspaces is not None:
                            A = _select_columns_dense(
                                rank_data.X_local, local_idx, workspaces[p]
                            )
                        elif isinstance(rank_data.X_local, np.ndarray):
                            A = rank_data.X_local[:, local_idx]
                        else:
                            A = rank_data.X_local.select_columns(local_idx).to_dense()
                        if general:
                            ys = rank_data.y_local[local_idx]
                            gvec = resolved.loss.grad(A.T @ v, ys)
                            extra = 0.0
                            if estimator is GradientEstimator.SVRG:
                                gvec = gvec - resolved.loss.grad(A.T @ anchor, ys)
                                extra = float(2 * A.shape[0] * A.shape[1])
                            g_p = A @ gvec / mbar
                            return g_p, float(4 * A.shape[0] * A.shape[1]) + extra
                        if estimator is GradientEstimator.PLAIN:
                            g_p = A @ (A.T @ v - rank_data.y_local[local_idx]) / mbar
                        else:
                            g_p = A @ (A.T @ (v - anchor)) / mbar
                        return g_p, float(4 * A.shape[0] * A.shape[1])

                    results = backend.map_ranks(gradient_rank, nranks)
                    backend.compute([fl for _g, fl in results], label="gradient_blocks")
                    g = loop.allreduce([g_p for g_p, _fl in results], label="allreduce_grad")
                    if estimator is GradientEstimator.SVRG:
                        g = g + full_grad  # type: ignore[operator]
                    backend.compute(8.0 * d, label="update")
                    if general:
                        w_new = resolved.penalty.prox(v - gamma * g, gamma)
                    else:
                        w_new = soft_threshold(v - gamma * g, thresh)

                w_prev, w = w, w_new
                t_prev = t_cur

                iter_obj: float | None = None
                if total_iter % monitor_every == 0 or (
                    epoch == epochs - 1 and _n == iters_per_epoch - 1
                ):
                    obj = view.value(w)  # out of band
                    loop.screen_objective(obj)
                    history.append(
                        total_iter,
                        obj,
                        stopping.rel_error(obj),
                        sim_time=backend.elapsed,
                        comm_round=loop.comm_rounds,
                    )
                    iter_obj = obj
                    if not np.isfinite(obj):
                        diverged = True
                    elif stopping.satisfied(obj, prev_obj):
                        converged = True
                    else:
                        if config.adaptive_restart and prev_obj is not None and obj > prev_obj:
                            t_prev = 1.0
                            w_prev = w.copy()
                            loop.stats.momentum_restarts += 1
                        prev_obj = obj
                loop.emit(outer=epoch, inner=total_iter, objective=iter_obj)
                rounds_done += 1
                if converged or diverged:
                    return
                if config.checkpoint_every and rounds_done % config.checkpoint_every == 0:
                    loop.commit_checkpoint(capture(epoch, _n + 1, mid_epoch=True))
            if converged or diverged:
                return

    try:
        loop.run(
            main_loop,
            capture=lambda: capture(0, 0, mid_epoch=False),
            restore=restore,
            repartition=repartition,
        )
    finally:
        # Real-parallelism backends hold worker processes / thread pools;
        # their cost ledgers survive close, so cost_summary() below and
        # the trace remain valid.
        backend.close()

    loop.finish(
        {
            "converged": converged,
            "diverged": diverged,
            "n_iterations": total_iter,
            "n_comm_rounds": loop.comm_rounds,
        }
    )

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=total_iter,
        history=history,
        n_comm_rounds=loop.comm_rounds,
        cost=backend.cost_summary(),
        meta={
            "solver": "sfista_distributed",
            "diverged": diverged,
            "b": b,
            "mbar": mbar,
            "estimator": estimator.value,
            "comm_mode": comm_mode,
            "step_size": gamma,
            "loss": resolved.loss.name,
            "penalty": resolved.penalty.spec,
            "nranks": nranks,
            "machine": backend.machine_name,
            "allreduce_algorithm": backend.allreduce_algorithm,
            "comm": config.comm,
            "comm_topology": config.comm_topology,
            "comm_compress": config.comm_compress,
            "checkpoint_every": config.checkpoint_every,
            "on_nan": config.on_nan,
            "max_recoveries": config.max_recoveries,
            "adaptive_restart": config.adaptive_restart,
            "resilience": loop.stats.as_meta(),
        },
    )
