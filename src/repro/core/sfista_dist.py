"""Distributed SFISTA baseline — one allreduce per iteration.

This is the algorithm RC-SFISTA is compared against in Figs. 4–5: identical
arithmetic, but the ``(H_n, R_n)`` blocks are allreduced every iteration,
so latency is paid ``N`` times (Table 1, SFISTA row).

Two communication modes:

* ``"hessian"`` (paper-faithful) — allreduce the ``d² + d`` words of
  ``[H_n | R_n]`` each iteration, matching Table 1's ``O(N d² log P)``
  bandwidth. Required by the PN framing where every rank needs ``H_n``.
* ``"gradient"`` (ablation, DESIGN.md choice #3) — each rank computes its
  local *gradient* contribution and only ``d`` words are allreduced. Not
  compatible with Hessian-reuse, but shows the design space.
"""

from __future__ import annotations

import numpy as np

from repro.core._dist_common import UPDATE_FLOPS, distribute_problem
from repro.core.fista import momentum_mu, t_next
from repro.core.objectives import L1LeastSquares
from repro.core.proximal import soft_threshold
from repro.core.results import History, SolveResult
from repro.core.sfista import GradientEstimator, stochastic_step_size
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.machine import MachineSpec
from repro.exceptions import ValidationError
from repro.utils.rng import RandomState, as_generator, minibatch_size, sample_indices
from repro.utils.validation import check_positive

__all__ = ["sfista_distributed"]


def _epoch_anchor_gradient(
    cluster: BSPCluster, data, w: np.ndarray, m: int, comm: str = "dense"
) -> np.ndarray:
    """SVRG anchor gradient: local contributions + one d-word allreduce."""
    contribs = []
    flops = []
    for rank_data in data.ranks:
        g_p, fl = rank_data.full_gradient_contribution(w, m)
        contribs.append(g_p)
        flops.append(fl)
    cluster.compute(flops, label="anchor_gradient")
    return cluster.allreduce_comm(contribs, mode=comm, label="allreduce_anchor_grad")


def sfista_distributed(
    problem: L1LeastSquares,
    nranks: int,
    *,
    machine: str | MachineSpec = "comet_effective",
    b: float = 0.1,
    step_size: float | None = None,
    epochs: int = 1,
    iters_per_epoch: int = 100,
    estimator: GradientEstimator | str = GradientEstimator.SVRG,
    comm_mode: str = "hessian",
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    monitor_every: int = 1,
    restart_momentum: bool = True,
    allreduce_algorithm: str = "recursive_doubling",
    jitter_seed: RandomState = None,
    cluster: BSPCluster | None = None,
) -> SolveResult:
    """Distributed SFISTA on the simulated cluster.

    Returns a :class:`SolveResult` whose ``history`` carries simulated
    times per checkpoint and whose ``cost`` holds the cluster counters
    (critical-path messages/words per rank — the L and W of Table 1).
    Objective monitoring is out of band (not charged).
    """
    estimator = GradientEstimator(estimator)
    if comm_mode not in ("hessian", "gradient"):
        raise ValidationError(f"comm_mode must be 'hessian' or 'gradient', got {comm_mode!r}")
    if estimator is GradientEstimator.EXACT:
        raise ValidationError("distributed SFISTA requires a sampled estimator (plain or svrg)")
    if epochs < 1 or iters_per_epoch < 1:
        raise ValidationError("epochs and iters_per_epoch must be >= 1")
    if monitor_every < 1:
        raise ValidationError(f"monitor_every must be >= 1, got {monitor_every}")
    stopping = stopping or StoppingCriterion()
    rng = as_generator(seed)
    mbar = minibatch_size(problem.m, b)
    gamma = (
        check_positive(step_size, "step_size")
        if step_size is not None
        else stochastic_step_size(
            problem.lipschitz(),
            problem.m,
            mbar,
            problem.max_sample_lipschitz,
            epoch_length=iters_per_epoch if restart_momentum else epochs * iters_per_epoch,
            deviation=problem.sampled_hessian_deviation(mbar),
        )
    )
    d = problem.d
    thresh = problem.lam * gamma

    data = distribute_problem(problem, nranks)
    if cluster is None:
        cluster = BSPCluster(
            nranks, machine, allreduce_algorithm=allreduce_algorithm, jitter_seed=jitter_seed
        )
    elif cluster.nranks != nranks:
        raise ValidationError(f"cluster has {cluster.nranks} ranks, expected {nranks}")

    w = np.zeros(d)
    w_prev = w.copy()
    t_prev = 1.0
    history = History()
    prev_obj: float | None = None
    converged = False
    diverged = False
    total_iter = 0
    comm_rounds = 0

    for epoch in range(epochs):
        anchor = w.copy()
        full_grad = (
            _epoch_anchor_gradient(cluster, data, anchor, problem.m)
            if estimator is GradientEstimator.SVRG
            else None
        )
        if estimator is GradientEstimator.SVRG:
            comm_rounds += 1
        if restart_momentum:
            t_prev = 1.0
            w_prev = w.copy()

        for _n in range(iters_per_epoch):
            total_iter += 1
            idx = sample_indices(rng, problem.m, mbar)

            t_cur = t_next(t_prev)
            mu = momentum_mu(t_prev, t_cur)
            v = w + mu * (w - w_prev)

            if comm_mode == "hessian":
                # Stages A+B: local sampled Gram blocks.
                packed = []
                flops = []
                for rank_data in data.ranks:
                    H_p, local_idx, fl = rank_data.sampled_hessian_contribution(idx, mbar, d)
                    if estimator is GradientEstimator.PLAIN:
                        R_p, fl_r = rank_data.sampled_rhs_contribution(local_idx, mbar, d)
                    else:
                        R_p, fl_r = np.zeros(d), 0.0
                    packed.append(np.concatenate([H_p.ravel(), R_p]))
                    flops.append(fl + fl_r)
                cluster.compute(flops, label="hessian_blocks")
                # Stage C: one allreduce of d² + d words.
                combined = cluster.allreduce(packed, label="allreduce_HR")
                comm_rounds += 1
                H = combined[: d * d].reshape(d, d)
                if estimator is GradientEstimator.PLAIN:
                    R = combined[d * d :]
                else:  # svrg: R = Hŵ − ∇f(ŵ), replicated arithmetic
                    R = H @ anchor - full_grad  # type: ignore[operator]
                    cluster.compute(2.0 * d * d, label="svrg_rhs")
                g = H @ v - R
                cluster.compute(UPDATE_FLOPS(d), label="update")
            else:
                # Gradient mode: local sampled-gradient contributions.
                contribs = []
                flops = []
                for rank_data in data.ranks:
                    local_idx = rank_data._restrict(idx)
                    if local_idx.size == 0:
                        contribs.append(np.zeros(d))
                        flops.append(0.0)
                        continue
                    if isinstance(rank_data.X_local, np.ndarray):
                        A = rank_data.X_local[:, local_idx]
                    else:
                        A = rank_data.X_local.select_columns(local_idx).to_dense()
                    if estimator is GradientEstimator.PLAIN:
                        g_p = A @ (A.T @ v - rank_data.y_local[local_idx]) / mbar
                    else:
                        g_p = A @ (A.T @ (v - anchor)) / mbar
                    contribs.append(g_p)
                    flops.append(float(4 * A.shape[0] * A.shape[1]))
                cluster.compute(flops, label="gradient_blocks")
                g = cluster.allreduce(contribs, label="allreduce_grad")
                comm_rounds += 1
                if estimator is GradientEstimator.SVRG:
                    g = g + full_grad  # type: ignore[operator]
                cluster.compute(8.0 * d, label="update")

            w_new = soft_threshold(v - gamma * g, thresh)
            w_prev, w = w, w_new
            t_prev = t_cur

            if total_iter % monitor_every == 0 or (
                epoch == epochs - 1 and _n == iters_per_epoch - 1
            ):
                obj = problem.value(w)  # out of band
                history.append(
                    total_iter,
                    obj,
                    stopping.rel_error(obj),
                    sim_time=cluster.elapsed,
                    comm_round=comm_rounds,
                )
                if not np.isfinite(obj):
                    diverged = True
                    break
                if stopping.satisfied(obj, prev_obj):
                    converged = True
                    break
                prev_obj = obj
        if converged or diverged:
            break

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=total_iter,
        history=history,
        n_comm_rounds=comm_rounds,
        cost=cluster.cost.summary(),
        meta={
            "solver": "sfista_distributed",
            "diverged": diverged,
            "b": b,
            "mbar": mbar,
            "estimator": estimator.value,
            "comm_mode": comm_mode,
            "step_size": gamma,
            "nranks": nranks,
            "machine": cluster.machine.name,
            "allreduce_algorithm": cluster.allreduce_algorithm,
        },
    )
