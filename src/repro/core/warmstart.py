"""Warm-start iterates keyed on λ, shared by path sweeps and the serve cache.

Both the regularization-path sweep (:func:`repro.core.path.lasso_path`) and
the job server's cross-request cache (:class:`repro.serve.cache.SolveCache`)
face the same question: *given that we are about to solve at λ, which
previously computed iterate is the best starting point?* The answer used to
live in a loop-local variable inside ``lasso_path``; :class:`WarmStartLadder`
is that logic as a reusable object.

The ladder stores ``(λ, w)`` pairs sorted by descending λ and suggests a
start for any requested λ:

* an **exact** λ match returns that iterate (a repeated solve needs only a
  few refinement iterations);
* otherwise the entry at the **nearest larger λ** is returned — the
  classical path warm start: supports grow as λ decreases, so the solution
  just above is the best predictor;
* with only smaller λs recorded, the nearest of those is still far better
  than zero (its support is a superset);
* an empty ladder suggests the all-zero cold start.

For a strictly-decreasing λ sweep the suggestions reduce exactly to
"previous grid point's solution", which is what ``lasso_path`` always did —
the refactor is behavior-preserving and the golden path tests pin it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["WarmStartLadder", "WARM_KINDS"]

#: Provenance tags returned by :meth:`WarmStartLadder.suggest`.
WARM_KINDS = ("cold", "exact", "path")


class WarmStartLadder:
    """λ-keyed warm-start iterates for one fixed problem (``X``, ``y``).

    The ladder never mutates stored iterates and callers must not either:
    every repository solver copies ``w0`` on entry, so handing out the
    stored array directly is safe and allocation-free.
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValidationError(f"dimension d must be >= 1, got {d}")
        self.d = int(d)
        # Descending λ; parallel lists keep bisection simple and allocation-light.
        self._lambdas: list[float] = []
        self._iterates: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._lambdas)

    @property
    def lambdas(self) -> tuple[float, ...]:
        """Recorded grid, descending."""
        return tuple(self._lambdas)

    def iterate_at(self, lam: float) -> np.ndarray:
        """The iterate recorded at exactly *lam* (KeyError when absent)."""
        lam = float(lam)
        for known, w in zip(self._lambdas, self._iterates):
            if known == lam:
                return w
        raise KeyError(f"no iterate recorded at lambda={lam!r}")

    def suggest(self, lam: float) -> tuple[np.ndarray, str]:
        """Best starting iterate for a solve at *lam*.

        Returns ``(w0, kind)`` with ``kind`` one of :data:`WARM_KINDS`.
        """
        lam = float(lam)
        if not np.isfinite(lam) or lam <= 0:
            raise ValidationError(f"lambda must be finite and > 0, got {lam}")
        if not self._lambdas:
            return np.zeros(self.d), "cold"
        # Nearest entry at or above lam; the list is descending, so that is
        # the last index with λ >= lam.
        best = None
        for i, known in enumerate(self._lambdas):
            if known < lam:
                break
            best = i
        if best is not None and self._lambdas[best] == lam:
            return self._iterates[best], "exact"
        if best is not None:
            return self._iterates[best], "path"
        # Only smaller λs recorded: the largest of them sits right below.
        return self._iterates[0], "path"

    def record(self, lam: float, w: np.ndarray) -> None:
        """Store iterate *w* for *lam* (replacing an exact-λ entry)."""
        lam = float(lam)
        if not np.isfinite(lam) or lam <= 0:
            raise ValidationError(f"lambda must be finite and > 0, got {lam}")
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.d,):
            raise ValidationError(f"iterate must have shape ({self.d},), got {w.shape}")
        w = w.copy()
        for i, known in enumerate(self._lambdas):
            if known == lam:
                self._iterates[i] = w
                return
            if known < lam:
                self._lambdas.insert(i, lam)
                self._iterates.insert(i, w)
                return
        self._lambdas.append(lam)
        self._iterates.append(w)
