"""Distributed RC-SFISTA — the paper's contribution on the simulated cluster.

Implements the four stages of Fig. 1 per outer round:

* **Stage A** — every rank draws the same ``k`` global sample sets from the
  shared seed and keeps the columns it owns.
* **Stage B** — each rank builds its ``k`` local blocks
  ``H_p = (1/m̄) X_{p,S} X_{p,S}ᵀ`` and (plain estimator) ``R_p``.
* **Stage C** — ONE ``MPI_Allreduce`` of the concatenated
  ``G = [H₁|…|H_k | R₁|…|R_k]`` — ``k(d² + d)`` words — instead of the
  ``k`` separate allreduces SFISTA pays. Latency ÷ k, bandwidth unchanged
  (Table 1).
* **Stage D** — ``k`` unrolled iterations, each running ``S`` Hessian-reuse
  inner steps, fully local and replicated.

The iterate sequence matches the serial :func:`repro.core.rc_sfista.rc_sfista`
with the same seed (the overlap changes only *where* communication
happens), which the integration tests assert.

Unified runtime
---------------
Execution-substrate, resilience and observability concerns live in
:mod:`repro.runtime`: bundle them in ``runtime=RuntimeConfig(...)`` (the
individual kwargs remain accepted; the resilience/observability ones are
deprecated). The solver body here is purely algorithmic — an
:class:`~repro.runtime.backend.ExecutionBackend` supplies the collectives
(serial or BSP-simulated) and a
:class:`~repro.runtime.driver.ResilientLoop` supplies checkpointing,
crash/NaN recovery with bit-exact replay, and telemetry.
"""

from __future__ import annotations

import numpy as np

from repro.core._dist_common import (
    UPDATE_FLOPS,
    RankWorkspaces,
    distribute_problem,
    hessian_reuse_update,
)
from repro.core.fista import momentum_mu, t_next
from repro.core.model import ERMObjective, resolve_objective
from repro.core.results import History, SolveResult
from repro.core.sfista import GradientEstimator, stochastic_step_size
from repro.core.sfista_dist import _epoch_anchor_gradient
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.distsim.machine import MachineSpec
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryCallback
from repro.runtime import Checkpoint, ResilientLoop, RuntimeConfig, build_host_backend, resolve_runtime
from repro.utils.rng import RandomState, as_generator, minibatch_size, sample_indices
from repro.utils.validation import check_positive

__all__ = ["rc_sfista_distributed"]


def rc_sfista_distributed(
    problem: ERMObjective,
    nranks: int,
    *,
    machine: str | MachineSpec = "comet_effective",
    k: int = 1,
    S: int = 1,
    b: float = 0.1,
    step_size: float | None = None,
    epochs: int = 1,
    iters_per_epoch: int = 100,
    estimator: GradientEstimator | str = GradientEstimator.SVRG,
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    monitor_every: int = 1,
    restart_momentum: bool = True,
    allreduce_algorithm: str = "recursive_doubling",
    comm: str = "dense",
    jitter_seed: RandomState = None,
    cluster: BSPCluster | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    recv_timeout: float | None = None,
    checkpoint_every: int = 0,
    on_nan: str | None = None,
    max_recoveries: int = 3,
    adaptive_restart: bool = False,
    telemetry: TelemetryCallback | None = None,
    metrics: MetricsRegistry | None = None,
    runtime: RuntimeConfig | None = None,
) -> SolveResult:
    """Distributed RC-SFISTA (Alg. 5 on the cluster of Fig. 1).

    See :func:`repro.core.rc_sfista.rc_sfista` for the algorithmic
    parameters ``k``, ``S``, ``b``; see
    :func:`repro.core.sfista_dist.sfista_distributed` for the cluster
    parameters. ``history`` carries simulated times; ``cost`` the cluster
    counters.

    ``comm`` selects the collective encoding: ``"dense"`` ships full
    buffers, ``"sparse"`` ships index+value pairs charged at O(nnz_union)
    words, ``"auto"`` measures the union density per phase and picks the
    cheaper encoding (the decision is logged into the cluster trace).
    Iterates are bit-identical across the three modes.

    Runtime
    -------
    runtime:
        A :class:`~repro.runtime.RuntimeConfig` bundling the execution
        knobs below (machine/comm selection, faults, retry, recv_timeout,
        checkpointing, on_nan, max_recoveries, adaptive_restart,
        telemetry, metrics — see that class for per-field docs). The
        individual kwargs remain accepted for compatibility but cannot be
        combined with ``runtime=``; passing the resilience/observability
        ones individually is deprecated. ``RuntimeConfig(backend="serial")``
        runs the same body on the zero-cost single-rank backend.
    """
    estimator = GradientEstimator(estimator)
    config = resolve_runtime(
        runtime,
        machine=machine,
        allreduce_algorithm=allreduce_algorithm,
        comm=comm,
        jitter_seed=jitter_seed,
        cluster=cluster,
        faults=faults,
        retry=retry,
        recv_timeout=recv_timeout,
        checkpoint_every=checkpoint_every,
        on_nan=on_nan,
        max_recoveries=max_recoveries,
        adaptive_restart=adaptive_restart,
        telemetry=telemetry,
        metrics=metrics,
    )
    if k < 1 or S < 1:
        raise ValidationError(f"k and S must be >= 1, got k={k}, S={S}")
    if estimator is GradientEstimator.EXACT:
        raise ValidationError("distributed RC-SFISTA requires a sampled estimator")
    if epochs < 1 or iters_per_epoch < 1:
        raise ValidationError("epochs and iters_per_epoch must be >= 1")
    if monitor_every < 1:
        raise ValidationError(f"monitor_every must be >= 1, got {monitor_every}")
    stopping = stopping or StoppingCriterion()
    # The objective view: for the historical squared+l1 pair this is the
    # problem itself and every branch below takes the legacy byte-identical
    # path; any other loss/penalty switches to the model-anchored general
    # path (same payload layout, same communicated words).
    resolved = resolve_objective(problem, loss=config.loss, penalty=config.penalty)
    view = resolved.objective
    general = not resolved.legacy
    rng = as_generator(seed)
    mbar = minibatch_size(problem.m, b)
    gamma = (
        check_positive(step_size, "step_size")
        if step_size is not None
        else stochastic_step_size(
            view.lipschitz(),
            problem.m,
            mbar,
            view.max_sample_lipschitz,
            epoch_length=iters_per_epoch if restart_momentum else epochs * iters_per_epoch,
            deviation=view.sampled_hessian_deviation(mbar),
        )
    )
    d = problem.d
    thresh = problem.lam * gamma
    # See rc_sfista: proximal-point damping of the reuse subproblem.
    eps_reg = 0.25 * view.sampled_hessian_deviation(mbar) if S > 1 else 0.0

    data = distribute_problem(problem, nranks)
    backend = build_host_backend(config, nranks)
    loop = ResilientLoop(backend, config, solver="rc_sfista_distributed")
    loop.step_size = gamma
    stride = d * d + d
    # Reusable scratch: per-rank stage-C payload buffers plus the Gram
    # workspaces (one shared, or one per rank when the backend maps ranks
    # in parallel). Bit-identical to the allocating path (pinned by tests).
    # The general path builds curvature-weighted blocks and has no
    # workspace variant.
    workspaces = (
        RankWorkspaces(nranks, d, mbar, parallel=backend.parallel_ranks)
        if config.gram_workspace and not general
        else None
    )
    loop.workspace = workspaces
    packed_bufs = (
        [np.empty(k * stride) for _ in range(nranks)] if workspaces is not None else None
    )
    loop.start(
        {
            "nranks": nranks,
            "k": k,
            "S": S,
            "b": b,
            "mbar": mbar,
            "epochs": epochs,
            "iters_per_epoch": iters_per_epoch,
            "estimator": estimator.value,
            "step_size": gamma,
            "loss": resolved.loss.name,
            "penalty": resolved.penalty.spec,
            "comm": config.comm,
            "comm_topology": config.comm_topology,
            "comm_compress": config.comm_compress,
            "machine": backend.machine_name,
            "checkpoint_every": config.checkpoint_every,
            "on_nan": config.on_nan,
        }
    )
    w = np.zeros(d)
    w_prev = w.copy()
    t_prev = 1.0
    history = History()
    prev_obj: float | None = None
    converged = False
    diverged = False
    sampled_iter = 0
    anchor = w.copy()
    full_grad: np.ndarray | None = None
    rounds_done = 0  # completed stage-C rounds, the checkpoint cadence
    start_epoch = 0
    start_rnd = 0
    in_epoch = False  # resuming mid-epoch: skip the epoch header
    n_rounds = -(-iters_per_epoch // k)

    def capture(epoch: int, next_rnd: int, mid_epoch: bool) -> Checkpoint:
        return Checkpoint.capture(
            arrays={"w": w, "w_prev": w_prev, "anchor": anchor, "full_grad": full_grad},
            scalars={
                "epoch": epoch,
                "rnd": next_rnd,
                "in_epoch": mid_epoch,
                "t_prev": t_prev,
                "prev_obj": prev_obj,
                "sampled_iter": sampled_iter,
                "rounds_done": rounds_done,
            },
            rng=rng,
            history_len=len(history),
        )

    def repartition(new_nranks: int, lost_ranks) -> float:
        """Shrink to *new_nranks*: re-scatter rows, rebuild rank-sized state.

        Returns the words that must move to new owners — the lost ranks'
        row blocks (``local_size`` rows of X plus y) — charged by the loop
        as recovery traffic. Deterministic: ``partition_columns`` depends
        only on (m, P′), so every replay shrinks identically.
        """
        nonlocal nranks, data, workspaces, packed_bufs
        moved = float(
            (d + 1) * sum(data.partition.local_size(r) for r in lost_ranks)
        )
        nranks = new_nranks
        data = distribute_problem(problem, new_nranks)
        if workspaces is not None:
            workspaces = RankWorkspaces(
                new_nranks, d, mbar, parallel=backend.parallel_ranks
            )
            loop.workspace = workspaces
            packed_bufs = [np.empty(k * stride) for _ in range(new_nranks)]
        return moved

    def restore(ck: Checkpoint) -> None:
        nonlocal w, w_prev, t_prev, prev_obj, sampled_iter, anchor, full_grad
        nonlocal rounds_done, start_epoch, start_rnd, in_epoch, converged, diverged
        w = ck.array("w")
        w_prev = ck.array("w_prev")
        anchor = ck.array("anchor")
        full_grad = ck.get("full_grad")
        s = ck.scalars
        t_prev = s["t_prev"]
        prev_obj = s["prev_obj"]
        sampled_iter = s["sampled_iter"]
        rounds_done = s["rounds_done"]
        start_epoch = s["epoch"]
        start_rnd = s["rnd"]
        in_epoch = s["in_epoch"]
        converged = diverged = False
        ck.restore_rng(rng)
        # Replayed monitor points re-append; drop the rows past the
        # checkpoint so the history is not recorded twice.
        history.truncate(ck.history_len)
        # loop.comm_rounds is NOT restored: replayed collectives really
        # happen (and are really charged) a second time.

    def main_loop() -> None:
        nonlocal w, w_prev, t_prev, prev_obj, converged, diverged, sampled_iter
        nonlocal anchor, full_grad, rounds_done, in_epoch, start_rnd
        for epoch in range(start_epoch, epochs):
            if not in_epoch:
                anchor = w.copy()
                full_grad = (
                    loop.screened(
                        lambda: _epoch_anchor_gradient(
                            backend,
                            data,
                            anchor,
                            problem.m,
                            loss=resolved.loss if general else None,
                        ),
                        "anchor gradient allreduce",
                    )
                    if estimator is GradientEstimator.SVRG
                    else None
                )
                if restart_momentum:
                    t_prev = 1.0
                    w_prev = w.copy()
                start_rnd = 0
            in_epoch = False

            for rnd in range(start_rnd, n_rounds):
                block = min(k, iters_per_epoch - rnd * k)

                # ---- stages A+B: k local (H_p, R_p) blocks per rank ---- #
                # All sample sets are drawn before the per-rank map so the
                # rng stream is identical whether the ranks run serially or
                # in parallel (the map closures never touch the generator).
                idx_sets = [sample_indices(rng, problem.m, mbar) for _ in range(block)]
                round_anchor: np.ndarray | None = None
                if general:
                    # Model-anchored stages A+B: every block of this round
                    # shares one linearization point a = w (round start) —
                    # H_j and g_j are curvature/gradient of the loss at a,
                    # packed in the same [H_j | g_j] layout and stride, so
                    # stage C communicates exactly k(d² + d) words as before.
                    round_anchor = w.copy()
                    packed = [np.empty(0)] * nranks

                    def build_rank(p: int) -> float:
                        rank_data = data.ranks[p]
                        z_r, flops = rank_data.local_predictions(round_anchor)
                        if estimator is GradientEstimator.SVRG:
                            z_a, fl_a = rank_data.local_predictions(anchor)
                            flops += fl_a
                        else:
                            z_a = None
                        chunks: list[np.ndarray] = []
                        for idx in idx_sets:
                            H_p, g_p, fl = rank_data.model_block_contribution(
                                idx,
                                mbar,
                                d,
                                loss=resolved.loss,
                                z_round=z_r,
                                z_anchor=z_a,
                            )
                            chunks.append(H_p.ravel())
                            chunks.append(g_p)
                            flops += fl
                        packed[p] = np.concatenate(chunks)
                        return flops

                elif packed_bufs is not None:
                    # Workspace path: build each block directly inside the
                    # reused stage-C payload buffer — no per-iteration
                    # allocation, bit-identical payload values.
                    packed = [buf[: block * stride] for buf in packed_bufs]

                    def build_rank(p: int) -> float:
                        rank_data = data.ranks[p]
                        ws = workspaces[p]
                        buf = packed[p]
                        flops = 0.0
                        for j, idx in enumerate(idx_sets):
                            base = j * stride
                            H_out = buf[base : base + d * d].reshape(d, d)
                            R_out = buf[base + d * d : base + stride]
                            _, local_idx, fl = rank_data.sampled_hessian_contribution(
                                idx, mbar, d, workspace=ws, out=H_out
                            )
                            if estimator is GradientEstimator.PLAIN:
                                _, fl_r = rank_data.sampled_rhs_contribution(
                                    local_idx, mbar, d, workspace=ws, out=R_out
                                )
                            else:
                                R_out.fill(0.0)
                                fl_r = 0.0
                            flops += fl + fl_r
                        return flops

                else:
                    packed = [np.empty(0)] * nranks

                    def build_rank(p: int) -> float:
                        rank_data = data.ranks[p]
                        chunks: list[np.ndarray] = []
                        flops = 0.0
                        for idx in idx_sets:
                            H_p, local_idx, fl = rank_data.sampled_hessian_contribution(
                                idx, mbar, d
                            )
                            if estimator is GradientEstimator.PLAIN:
                                R_p, fl_r = rank_data.sampled_rhs_contribution(
                                    local_idx, mbar, d
                                )
                            else:
                                R_p, fl_r = np.zeros(d), 0.0
                            chunks.append(H_p.ravel())
                            chunks.append(R_p)
                            flops += fl + fl_r
                        packed[p] = np.concatenate(chunks)
                        return flops

                per_rank_flops = np.asarray(backend.map_ranks(build_rank, nranks))
                backend.compute(per_rank_flops, label="hessian_blocks")

                # ---- stage C: ONE allreduce of k(d² + d) words --------- #
                combined = loop.allreduce(packed, label="allreduce_G")

                # ---- stage D: k × S replicated local updates ----------- #
                stop_now = False
                for j in range(block):
                    base = j * stride
                    H = combined[base : base + d * d].reshape(d, d)
                    if general:
                        # step_dir = Hu − R = H(u − a) + g_S(a) [+ SVRG
                        # correction] — reduces exactly to the legacy
                        # formulas below for the squared loss.
                        R = H @ round_anchor - combined[base + d * d : base + stride]
                        if estimator is not GradientEstimator.PLAIN:
                            R = R - full_grad  # type: ignore[operator]
                        backend.compute(2.0 * d * d, label="model_rhs")
                    elif estimator is GradientEstimator.PLAIN:
                        R = combined[base + d * d : base + stride]
                    else:
                        R = H @ anchor - full_grad  # type: ignore[operator]
                        backend.compute(2.0 * d * d, label="svrg_rhs")
                    t_cur = t_next(t_prev)
                    mu = momentum_mu(t_prev, t_cur)
                    v = w + mu * (w - w_prev)
                    u = hessian_reuse_update(
                        H, R, v, gamma=gamma, thresh=thresh, S=S, eps_reg=eps_reg,
                        prox=resolved.penalty.prox if general else None,
                    )
                    for _s in range(S):  # Eqs. (20)-(23): S prox steps on the model
                        backend.compute(UPDATE_FLOPS(d), label="update")
                    w_prev, w = w, u
                    t_prev = t_cur
                    sampled_iter += 1

                    iter_obj: float | None = None
                    if sampled_iter % monitor_every == 0 or (
                        epoch == epochs - 1 and rnd == n_rounds - 1 and j == block - 1
                    ):
                        obj = view.value(w)  # out of band
                        # An iterate gone non-finite cannot be fixed by
                        # re-communicating — recompute degrades to rollback.
                        loop.screen_objective(obj)
                        history.append(
                            sampled_iter,
                            obj,
                            stopping.rel_error(obj),
                            sim_time=backend.elapsed,
                            comm_round=loop.comm_rounds,
                        )
                        iter_obj = obj
                        if not np.isfinite(obj):
                            diverged = True
                            stop_now = True
                        elif stopping.satisfied(obj, prev_obj):
                            converged = True
                            stop_now = True
                        else:
                            if config.adaptive_restart and prev_obj is not None and obj > prev_obj:
                                t_prev = 1.0
                                w_prev = w.copy()
                                loop.stats.momentum_restarts += 1
                            prev_obj = obj
                    loop.emit(outer=epoch, inner=sampled_iter, objective=iter_obj)
                    if stop_now:
                        break
                rounds_done += 1
                if stop_now:
                    return
                if config.checkpoint_every and rounds_done % config.checkpoint_every == 0:
                    loop.commit_checkpoint(capture(epoch, rnd + 1, mid_epoch=True))
            if converged or diverged:
                return

    # The free initial checkpoint (capture=) means recovery without
    # periodic checkpoints restarts from scratch — nothing has moved,
    # nothing is charged.
    try:
        loop.run(
            main_loop,
            capture=lambda: capture(0, 0, mid_epoch=False),
            restore=restore,
            repartition=repartition,
        )
    finally:
        # Real-parallelism backends hold worker processes / thread pools;
        # their cost ledgers survive close, so cost_summary() below and
        # the trace remain valid.
        backend.close()

    loop.finish(
        {
            "converged": converged,
            "diverged": diverged,
            "n_iterations": sampled_iter,
            "n_comm_rounds": loop.comm_rounds,
        }
    )

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=sampled_iter,
        history=history,
        n_comm_rounds=loop.comm_rounds,
        cost=backend.cost_summary(),
        meta={
            "solver": "rc_sfista_distributed",
            "diverged": diverged,
            "k": k,
            "S": S,
            "b": b,
            "mbar": mbar,
            "estimator": estimator.value,
            "step_size": gamma,
            "loss": resolved.loss.name,
            "penalty": resolved.penalty.spec,
            "nranks": nranks,
            "machine": backend.machine_name,
            "allreduce_algorithm": backend.allreduce_algorithm,
            "comm": config.comm,
            "comm_topology": config.comm_topology,
            "comm_compress": config.comm_compress,
            "checkpoint_every": config.checkpoint_every,
            "on_nan": config.on_nan,
            "max_recoveries": config.max_recoveries,
            "adaptive_restart": config.adaptive_restart,
            "resilience": loop.stats.as_meta(),
        },
    )
