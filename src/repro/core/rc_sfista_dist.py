"""Distributed RC-SFISTA — the paper's contribution on the simulated cluster.

Implements the four stages of Fig. 1 per outer round:

* **Stage A** — every rank draws the same ``k`` global sample sets from the
  shared seed and keeps the columns it owns.
* **Stage B** — each rank builds its ``k`` local blocks
  ``H_p = (1/m̄) X_{p,S} X_{p,S}ᵀ`` and (plain estimator) ``R_p``.
* **Stage C** — ONE ``MPI_Allreduce`` of the concatenated
  ``G = [H₁|…|H_k | R₁|…|R_k]`` — ``k(d² + d)`` words — instead of the
  ``k`` separate allreduces SFISTA pays. Latency ÷ k, bandwidth unchanged
  (Table 1).
* **Stage D** — ``k`` unrolled iterations, each running ``S`` Hessian-reuse
  inner steps, fully local and replicated.

The iterate sequence matches the serial :func:`repro.core.rc_sfista.rc_sfista`
with the same seed (the overlap changes only *where* communication
happens), which the integration tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.core._dist_common import UPDATE_FLOPS, distribute_problem
from repro.core.fista import momentum_mu, t_next
from repro.core.objectives import L1LeastSquares
from repro.core.proximal import soft_threshold
from repro.core.results import History, SolveResult
from repro.core.sfista import GradientEstimator, stochastic_step_size
from repro.core.sfista_dist import _epoch_anchor_gradient
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.machine import MachineSpec
from repro.distsim.sparse_collectives import COMM_MODES
from repro.exceptions import ValidationError
from repro.utils.rng import RandomState, as_generator, minibatch_size, sample_indices
from repro.utils.validation import check_positive

__all__ = ["rc_sfista_distributed"]


def rc_sfista_distributed(
    problem: L1LeastSquares,
    nranks: int,
    *,
    machine: str | MachineSpec = "comet_effective",
    k: int = 1,
    S: int = 1,
    b: float = 0.1,
    step_size: float | None = None,
    epochs: int = 1,
    iters_per_epoch: int = 100,
    estimator: GradientEstimator | str = GradientEstimator.SVRG,
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    monitor_every: int = 1,
    restart_momentum: bool = True,
    allreduce_algorithm: str = "recursive_doubling",
    comm: str = "dense",
    jitter_seed: RandomState = None,
    cluster: BSPCluster | None = None,
) -> SolveResult:
    """Distributed RC-SFISTA (Alg. 5 on the cluster of Fig. 1).

    See :func:`repro.core.rc_sfista.rc_sfista` for the algorithmic
    parameters ``k``, ``S``, ``b``; see
    :func:`repro.core.sfista_dist.sfista_distributed` for the cluster
    parameters. ``history`` carries simulated times; ``cost`` the cluster
    counters.

    ``comm`` selects the collective encoding: ``"dense"`` ships full
    buffers, ``"sparse"`` ships index+value pairs charged at O(nnz_union)
    words, ``"auto"`` measures the union density per phase and picks the
    cheaper encoding (the decision is logged into the cluster trace).
    Iterates are bit-identical across the three modes.
    """
    estimator = GradientEstimator(estimator)
    if comm not in COMM_MODES:
        raise ValidationError(f"comm must be one of {COMM_MODES}, got {comm!r}")
    if k < 1 or S < 1:
        raise ValidationError(f"k and S must be >= 1, got k={k}, S={S}")
    if estimator is GradientEstimator.EXACT:
        raise ValidationError("distributed RC-SFISTA requires a sampled estimator")
    if epochs < 1 or iters_per_epoch < 1:
        raise ValidationError("epochs and iters_per_epoch must be >= 1")
    if monitor_every < 1:
        raise ValidationError(f"monitor_every must be >= 1, got {monitor_every}")
    stopping = stopping or StoppingCriterion()
    rng = as_generator(seed)
    mbar = minibatch_size(problem.m, b)
    gamma = (
        check_positive(step_size, "step_size")
        if step_size is not None
        else stochastic_step_size(
            problem.lipschitz(),
            problem.m,
            mbar,
            problem.max_sample_lipschitz,
            epoch_length=iters_per_epoch if restart_momentum else epochs * iters_per_epoch,
            deviation=problem.sampled_hessian_deviation(mbar),
        )
    )
    d = problem.d
    thresh = problem.lam * gamma
    # See rc_sfista: proximal-point damping of the reuse subproblem.
    eps_reg = 0.25 * problem.sampled_hessian_deviation(mbar) if S > 1 else 0.0

    data = distribute_problem(problem, nranks)
    if cluster is None:
        cluster = BSPCluster(
            nranks, machine, allreduce_algorithm=allreduce_algorithm, jitter_seed=jitter_seed
        )
    elif cluster.nranks != nranks:
        raise ValidationError(f"cluster has {cluster.nranks} ranks, expected {nranks}")

    w = np.zeros(d)
    w_prev = w.copy()
    t_prev = 1.0
    history = History()
    prev_obj: float | None = None
    converged = False
    diverged = False
    sampled_iter = 0
    comm_rounds = 0

    for epoch in range(epochs):
        anchor = w.copy()
        full_grad = (
            _epoch_anchor_gradient(cluster, data, anchor, problem.m, comm)
            if estimator is GradientEstimator.SVRG
            else None
        )
        if estimator is GradientEstimator.SVRG:
            comm_rounds += 1
        if restart_momentum:
            t_prev = 1.0
            w_prev = w.copy()

        n_rounds = -(-iters_per_epoch // k)
        for rnd in range(n_rounds):
            block = min(k, iters_per_epoch - rnd * k)

            # ---- stages A+B: k local (H_p, R_p) blocks per rank -------- #
            per_rank_payload: list[list[np.ndarray]] = [[] for _ in range(nranks)]
            per_rank_flops = np.zeros(nranks)
            for _j in range(block):
                idx = sample_indices(rng, problem.m, mbar)
                for p, rank_data in enumerate(data.ranks):
                    H_p, local_idx, fl = rank_data.sampled_hessian_contribution(idx, mbar, d)
                    if estimator is GradientEstimator.PLAIN:
                        R_p, fl_r = rank_data.sampled_rhs_contribution(local_idx, mbar, d)
                    else:
                        R_p, fl_r = np.zeros(d), 0.0
                    per_rank_payload[p].append(H_p.ravel())
                    per_rank_payload[p].append(R_p)
                    per_rank_flops[p] += fl + fl_r
            cluster.compute(per_rank_flops, label="hessian_blocks")

            # ---- stage C: ONE allreduce of k(d² + d) words ------------- #
            packed = [np.concatenate(chunks) for chunks in per_rank_payload]
            combined = cluster.allreduce_comm(packed, mode=comm, label="allreduce_G")
            comm_rounds += 1

            # ---- stage D: k × S replicated local updates --------------- #
            stride = d * d + d
            stop_now = False
            for j in range(block):
                base = j * stride
                H = combined[base : base + d * d].reshape(d, d)
                if estimator is GradientEstimator.PLAIN:
                    R = combined[base + d * d : base + stride]
                else:
                    R = H @ anchor - full_grad  # type: ignore[operator]
                    cluster.compute(2.0 * d * d, label="svrg_rhs")
                t_cur = t_next(t_prev)
                mu = momentum_mu(t_prev, t_cur)
                v = w + mu * (w - w_prev)
                u = v
                for _s in range(S):  # Eqs. (20)-(23): prox steps on the model
                    step_dir = H @ u - R + eps_reg * (u - v)
                    u = soft_threshold(u - gamma * step_dir, thresh)
                    cluster.compute(UPDATE_FLOPS(d), label="update")
                w_prev, w = w, u
                t_prev = t_cur
                sampled_iter += 1

                if sampled_iter % monitor_every == 0 or (
                    epoch == epochs - 1 and rnd == n_rounds - 1 and j == block - 1
                ):
                    obj = problem.value(w)  # out of band
                    history.append(
                        sampled_iter,
                        obj,
                        stopping.rel_error(obj),
                        sim_time=cluster.elapsed,
                        comm_round=comm_rounds,
                    )
                    if not np.isfinite(obj):
                        diverged = True
                        stop_now = True
                        break
                    if stopping.satisfied(obj, prev_obj):
                        converged = True
                        stop_now = True
                        break
                    prev_obj = obj
            if stop_now:
                break
        if converged or diverged:
            break

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=sampled_iter,
        history=history,
        n_comm_rounds=comm_rounds,
        cost=cluster.cost.summary(),
        meta={
            "solver": "rc_sfista_distributed",
            "diverged": diverged,
            "k": k,
            "S": S,
            "b": b,
            "mbar": mbar,
            "estimator": estimator.value,
            "step_size": gamma,
            "nranks": nranks,
            "machine": cluster.machine.name,
            "allreduce_algorithm": cluster.allreduce_algorithm,
            "comm": comm,
        },
    )
