"""Distributed RC-SFISTA — the paper's contribution on the simulated cluster.

Implements the four stages of Fig. 1 per outer round:

* **Stage A** — every rank draws the same ``k`` global sample sets from the
  shared seed and keeps the columns it owns.
* **Stage B** — each rank builds its ``k`` local blocks
  ``H_p = (1/m̄) X_{p,S} X_{p,S}ᵀ`` and (plain estimator) ``R_p``.
* **Stage C** — ONE ``MPI_Allreduce`` of the concatenated
  ``G = [H₁|…|H_k | R₁|…|R_k]`` — ``k(d² + d)`` words — instead of the
  ``k`` separate allreduces SFISTA pays. Latency ÷ k, bandwidth unchanged
  (Table 1).
* **Stage D** — ``k`` unrolled iterations, each running ``S`` Hessian-reuse
  inner steps, fully local and replicated.

The iterate sequence matches the serial :func:`repro.core.rc_sfista.rc_sfista`
with the same seed (the overlap changes only *where* communication
happens), which the integration tests assert.

Resilient runtime
-----------------
With ``faults``/``retry``/``checkpoint_every``/``on_nan`` set, the solver
runs on a faulty cluster and tolerates it: state is checkpointed every
``checkpoint_every`` stage-C rounds (charged to the ``checkpoint_words``
counter), a crashed rank is healed and the run rolls back to the last
checkpoint — replaying bit-exactly thanks to the captured RNG state, so
the recovered solution equals the fault-free one — and NaN/Inf escaping a
collective is screened per the ``on_nan`` policy.
"""

from __future__ import annotations

import numpy as np

from repro.core._dist_common import UPDATE_FLOPS, distribute_problem
from repro.core.fista import momentum_mu, t_next
from repro.core.objectives import L1LeastSquares
from repro.core.proximal import soft_threshold
from repro.core.resilience import Checkpoint, NumericalGuard, RecoveryStats, RollbackRequested
from repro.core.results import History, SolveResult
from repro.core.sfista import GradientEstimator, stochastic_step_size
from repro.core.sfista_dist import _epoch_anchor_gradient
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.faults import FaultInjector, FaultPlan, RetryPolicy, as_injector
from repro.distsim.machine import MachineSpec
from repro.distsim.sparse_collectives import COMM_MODES
from repro.exceptions import NumericalFaultError, RankFailureError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import IterationRecord, TelemetryCallback
from repro.utils.rng import RandomState, as_generator, minibatch_size, sample_indices
from repro.utils.validation import check_positive

__all__ = ["rc_sfista_distributed"]


def rc_sfista_distributed(
    problem: L1LeastSquares,
    nranks: int,
    *,
    machine: str | MachineSpec = "comet_effective",
    k: int = 1,
    S: int = 1,
    b: float = 0.1,
    step_size: float | None = None,
    epochs: int = 1,
    iters_per_epoch: int = 100,
    estimator: GradientEstimator | str = GradientEstimator.SVRG,
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    monitor_every: int = 1,
    restart_momentum: bool = True,
    allreduce_algorithm: str = "recursive_doubling",
    comm: str = "dense",
    jitter_seed: RandomState = None,
    cluster: BSPCluster | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    recv_timeout: float | None = None,
    checkpoint_every: int = 0,
    on_nan: str | None = None,
    max_recoveries: int = 3,
    adaptive_restart: bool = False,
    telemetry: TelemetryCallback | None = None,
    metrics: MetricsRegistry | None = None,
) -> SolveResult:
    """Distributed RC-SFISTA (Alg. 5 on the cluster of Fig. 1).

    See :func:`repro.core.rc_sfista.rc_sfista` for the algorithmic
    parameters ``k``, ``S``, ``b``; see
    :func:`repro.core.sfista_dist.sfista_distributed` for the cluster
    parameters. ``history`` carries simulated times; ``cost`` the cluster
    counters.

    ``comm`` selects the collective encoding: ``"dense"`` ships full
    buffers, ``"sparse"`` ships index+value pairs charged at O(nnz_union)
    words, ``"auto"`` measures the union density per phase and picks the
    cheaper encoding (the decision is logged into the cluster trace).
    Iterates are bit-identical across the three modes.

    Resilience knobs
    ----------------
    faults / retry / recv_timeout:
        Build the cluster with a :class:`~repro.distsim.faults.FaultPlan`
        (or injector), a torn-collective
        :class:`~repro.distsim.faults.RetryPolicy`, and an arrival-skew
        deadline. Mutually exclusive with passing a prebuilt ``cluster``
        (configure that cluster directly instead).
    checkpoint_every:
        Checkpoint iterate + momentum + RNG state every this many stage-C
        rounds (0 disables periodic checkpoints; a free initial checkpoint
        always exists, so crash recovery restarts from scratch).
    on_nan:
        NaN/Inf screening policy for collective results and monitored
        objectives: ``None`` (off — legacy ``diverged`` behavior),
        ``"raise"``, ``"rollback"`` or ``"recompute"``.
    max_recoveries:
        Rollbacks (crash or numerical) tolerated before the error
        propagates.
    adaptive_restart:
        Reset FISTA momentum whenever the monitored objective increases.

    Observability
    -------------
    telemetry:
        A :class:`~repro.obs.telemetry.TelemetryCallback`; receives one
        :class:`~repro.obs.telemetry.IterationRecord` per inner iteration
        (``retries`` = screening recomputes, ``recoveries`` = rollbacks,
        both cumulative at emit time) plus run start/end. Strictly out of
        band — attaching it never changes iterates, costs or traces.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` the cluster publishes
        into. Mutually exclusive with a prebuilt ``cluster`` (pass the
        registry to that cluster instead).
    """
    estimator = GradientEstimator(estimator)
    if comm not in COMM_MODES:
        raise ValidationError(f"comm must be one of {COMM_MODES}, got {comm!r}")
    if k < 1 or S < 1:
        raise ValidationError(f"k and S must be >= 1, got k={k}, S={S}")
    if estimator is GradientEstimator.EXACT:
        raise ValidationError("distributed RC-SFISTA requires a sampled estimator")
    if epochs < 1 or iters_per_epoch < 1:
        raise ValidationError("epochs and iters_per_epoch must be >= 1")
    if monitor_every < 1:
        raise ValidationError(f"monitor_every must be >= 1, got {monitor_every}")
    if checkpoint_every < 0:
        raise ValidationError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
    if max_recoveries < 0:
        raise ValidationError(f"max_recoveries must be >= 0, got {max_recoveries}")
    stopping = stopping or StoppingCriterion()
    guard = NumericalGuard(on_nan)
    rng = as_generator(seed)
    mbar = minibatch_size(problem.m, b)
    gamma = (
        check_positive(step_size, "step_size")
        if step_size is not None
        else stochastic_step_size(
            problem.lipschitz(),
            problem.m,
            mbar,
            problem.max_sample_lipschitz,
            epoch_length=iters_per_epoch if restart_momentum else epochs * iters_per_epoch,
            deviation=problem.sampled_hessian_deviation(mbar),
        )
    )
    d = problem.d
    thresh = problem.lam * gamma
    # See rc_sfista: proximal-point damping of the reuse subproblem.
    eps_reg = 0.25 * problem.sampled_hessian_deviation(mbar) if S > 1 else 0.0

    data = distribute_problem(problem, nranks)
    injector = as_injector(faults)
    if cluster is None:
        cluster = BSPCluster(
            nranks,
            machine,
            allreduce_algorithm=allreduce_algorithm,
            jitter_seed=jitter_seed,
            injector=injector,
            retry=retry,
            collective_deadline=recv_timeout,
            metrics=metrics,
        )
        injector = cluster.injector
    else:
        if injector is not None or retry is not None or recv_timeout is not None:
            raise ValidationError(
                "configure faults/retry/recv_timeout on the supplied cluster, "
                "not through the solver"
            )
        if metrics is not None:
            raise ValidationError(
                "attach the metrics registry to the supplied cluster, "
                "not through the solver"
            )
        if cluster.nranks != nranks:
            raise ValidationError(f"cluster has {cluster.nranks} ranks, expected {nranks}")
        injector = cluster.injector

    # -- resilient-runtime state ---------------------------------------- #
    stats = RecoveryStats()
    if telemetry is not None:
        telemetry.on_run_start(
            "rc_sfista_distributed",
            {
                "nranks": nranks,
                "k": k,
                "S": S,
                "b": b,
                "mbar": mbar,
                "epochs": epochs,
                "iters_per_epoch": iters_per_epoch,
                "estimator": estimator.value,
                "step_size": gamma,
                "comm": comm,
                "machine": cluster.machine.name,
                "checkpoint_every": checkpoint_every,
                "on_nan": on_nan,
            },
        )
    w = np.zeros(d)
    w_prev = w.copy()
    t_prev = 1.0
    history = History()
    prev_obj: float | None = None
    converged = False
    diverged = False
    sampled_iter = 0
    comm_rounds = 0
    anchor = w.copy()
    full_grad: np.ndarray | None = None
    rounds_done = 0  # completed stage-C rounds, the checkpoint cadence
    start_epoch = 0
    start_rnd = 0
    in_epoch = False  # resuming mid-epoch: skip the epoch header
    n_rounds = -(-iters_per_epoch // k)

    def capture(epoch: int, next_rnd: int, mid_epoch: bool) -> Checkpoint:
        return Checkpoint.capture(
            arrays={"w": w, "w_prev": w_prev, "anchor": anchor, "full_grad": full_grad},
            scalars={
                "epoch": epoch,
                "rnd": next_rnd,
                "in_epoch": mid_epoch,
                "t_prev": t_prev,
                "prev_obj": prev_obj,
                "sampled_iter": sampled_iter,
                "rounds_done": rounds_done,
            },
            rng=rng,
            history_len=len(history),
        )

    def restore(ck: Checkpoint) -> None:
        nonlocal w, w_prev, t_prev, prev_obj, sampled_iter, anchor, full_grad
        nonlocal rounds_done, start_epoch, start_rnd, in_epoch, converged, diverged
        w = ck.array("w")
        w_prev = ck.array("w_prev")
        anchor = ck.array("anchor")
        full_grad = ck.get("full_grad")
        s = ck.scalars
        t_prev = s["t_prev"]
        prev_obj = s["prev_obj"]
        sampled_iter = s["sampled_iter"]
        rounds_done = s["rounds_done"]
        start_epoch = s["epoch"]
        start_rnd = s["rnd"]
        in_epoch = s["in_epoch"]
        converged = diverged = False
        ck.restore_rng(rng)
        # Replayed monitor points re-append; drop the rows past the
        # checkpoint so the history is not recorded twice.
        history.truncate(ck.history_len)
        # comm_rounds is NOT restored: replayed collectives really happen
        # (and are really charged) a second time.

    def screened_anchor_gradient() -> np.ndarray:
        """SVRG anchor gradient with recompute-on-corruption screening."""
        nonlocal comm_rounds
        for _attempt in range(max_recoveries + 1):
            g = _epoch_anchor_gradient(cluster, data, anchor, problem.m, comm)
            comm_rounds += 1
            if not guard.screen(g, "anchor gradient allreduce", stats):
                return g
            stats.recomputes += 1
        raise NumericalFaultError(
            f"anchor gradient stayed non-finite after {max_recoveries + 1} attempt(s)"
        )

    def screened_allreduce_G(packed: list[np.ndarray]) -> np.ndarray:
        """Stage-C allreduce with recompute-on-corruption screening."""
        nonlocal comm_rounds
        for _attempt in range(max_recoveries + 1):
            combined = cluster.allreduce_comm(packed, mode=comm, label="allreduce_G")
            comm_rounds += 1
            if not guard.screen(combined, "stage-C allreduce", stats):
                return combined
            stats.recomputes += 1
        raise NumericalFaultError(
            f"stage-C allreduce stayed non-finite after {max_recoveries + 1} attempt(s)"
        )

    def emit_iteration(epoch: int, obj_val: float | None) -> None:
        if telemetry is None:
            return
        telemetry.on_iteration(
            IterationRecord(
                outer=epoch,
                inner=sampled_iter,
                objective=obj_val,
                step_size=gamma,
                comm_mode=comm,
                comm_decision=cluster.last_comm_decision,
                retries=stats.recomputes,
                recoveries=stats.rollbacks,
                sim_time=cluster.elapsed,
            )
        )

    def main_loop() -> None:
        nonlocal w, w_prev, t_prev, prev_obj, converged, diverged, sampled_iter
        nonlocal comm_rounds, anchor, full_grad, rounds_done, in_epoch, start_rnd, ck
        for epoch in range(start_epoch, epochs):
            if not in_epoch:
                anchor = w.copy()
                full_grad = (
                    screened_anchor_gradient()
                    if estimator is GradientEstimator.SVRG
                    else None
                )
                if restart_momentum:
                    t_prev = 1.0
                    w_prev = w.copy()
                start_rnd = 0
            in_epoch = False

            for rnd in range(start_rnd, n_rounds):
                block = min(k, iters_per_epoch - rnd * k)

                # ---- stages A+B: k local (H_p, R_p) blocks per rank ---- #
                per_rank_payload: list[list[np.ndarray]] = [[] for _ in range(nranks)]
                per_rank_flops = np.zeros(nranks)
                for _j in range(block):
                    idx = sample_indices(rng, problem.m, mbar)
                    for p, rank_data in enumerate(data.ranks):
                        H_p, local_idx, fl = rank_data.sampled_hessian_contribution(idx, mbar, d)
                        if estimator is GradientEstimator.PLAIN:
                            R_p, fl_r = rank_data.sampled_rhs_contribution(local_idx, mbar, d)
                        else:
                            R_p, fl_r = np.zeros(d), 0.0
                        per_rank_payload[p].append(H_p.ravel())
                        per_rank_payload[p].append(R_p)
                        per_rank_flops[p] += fl + fl_r
                cluster.compute(per_rank_flops, label="hessian_blocks")

                # ---- stage C: ONE allreduce of k(d² + d) words --------- #
                packed = [np.concatenate(chunks) for chunks in per_rank_payload]
                combined = screened_allreduce_G(packed)

                # ---- stage D: k × S replicated local updates ----------- #
                stride = d * d + d
                stop_now = False
                for j in range(block):
                    base = j * stride
                    H = combined[base : base + d * d].reshape(d, d)
                    if estimator is GradientEstimator.PLAIN:
                        R = combined[base + d * d : base + stride]
                    else:
                        R = H @ anchor - full_grad  # type: ignore[operator]
                        cluster.compute(2.0 * d * d, label="svrg_rhs")
                    t_cur = t_next(t_prev)
                    mu = momentum_mu(t_prev, t_cur)
                    v = w + mu * (w - w_prev)
                    u = v
                    for _s in range(S):  # Eqs. (20)-(23): prox steps on the model
                        step_dir = H @ u - R + eps_reg * (u - v)
                        u = soft_threshold(u - gamma * step_dir, thresh)
                        cluster.compute(UPDATE_FLOPS(d), label="update")
                    w_prev, w = w, u
                    t_prev = t_cur
                    sampled_iter += 1

                    iter_obj: float | None = None
                    if sampled_iter % monitor_every == 0 or (
                        epoch == epochs - 1 and rnd == n_rounds - 1 and j == block - 1
                    ):
                        obj = problem.value(w)  # out of band
                        if guard.enabled and guard.screen(obj, "monitored objective", stats):
                            # An iterate gone non-finite cannot be fixed by
                            # re-communicating — recompute degrades to rollback.
                            raise RollbackRequested("monitored objective")
                        history.append(
                            sampled_iter,
                            obj,
                            stopping.rel_error(obj),
                            sim_time=cluster.elapsed,
                            comm_round=comm_rounds,
                        )
                        iter_obj = obj
                        if not np.isfinite(obj):
                            diverged = True
                            stop_now = True
                        elif stopping.satisfied(obj, prev_obj):
                            converged = True
                            stop_now = True
                        else:
                            if adaptive_restart and prev_obj is not None and obj > prev_obj:
                                t_prev = 1.0
                                w_prev = w.copy()
                                stats.momentum_restarts += 1
                            prev_obj = obj
                    emit_iteration(epoch, iter_obj)
                    if stop_now:
                        break
                rounds_done += 1
                if stop_now:
                    return
                if checkpoint_every and rounds_done % checkpoint_every == 0:
                    # Capture first, but only promote the snapshot to the
                    # rollback target once its traffic lands: a crash mid-
                    # checkpoint leaves a torn copy on stable storage, so
                    # recovery must use the previous durable one.
                    new_ck = capture(epoch, rnd + 1, mid_epoch=True)
                    cluster.checkpoint(new_ck.words)
                    ck = new_ck
                    stats.checkpoints += 1
            if converged or diverged:
                return

    # Free initial checkpoint: recovery without periodic checkpoints
    # restarts from scratch (nothing has moved, nothing is charged).
    ck = capture(0, 0, mid_epoch=False)
    recoveries = 0
    while True:
        try:
            main_loop()
            break
        except RankFailureError:
            if injector is None:
                raise
            recoveries += 1
            if recoveries > max_recoveries:
                raise
            healed = injector.heal_all()
            stats.rank_failures_recovered += 1
            stats.healed_ranks.extend(healed)
            stats.rollbacks += 1
            cluster.recover(ck.words)
            restore(ck)
        except RollbackRequested as sig:
            recoveries += 1
            if recoveries > max_recoveries:
                raise NumericalFaultError(
                    f"non-finite values in {sig.what} persisted after "
                    f"{max_recoveries} rollback(s)"
                ) from None
            stats.rollbacks += 1
            cluster.recover(ck.words)
            restore(ck)

    if telemetry is not None:
        telemetry.on_run_end(
            cost=cluster.cost.summary(),
            trace=cluster.trace,
            meta={
                "solver": "rc_sfista_distributed",
                "converged": converged,
                "diverged": diverged,
                "n_iterations": sampled_iter,
                "n_comm_rounds": comm_rounds,
                "resilience": stats.as_meta(),
            },
        )

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=sampled_iter,
        history=history,
        n_comm_rounds=comm_rounds,
        cost=cluster.cost.summary(),
        meta={
            "solver": "rc_sfista_distributed",
            "diverged": diverged,
            "k": k,
            "S": S,
            "b": b,
            "mbar": mbar,
            "estimator": estimator.value,
            "step_size": gamma,
            "nranks": nranks,
            "machine": cluster.machine.name,
            "allreduce_algorithm": cluster.allreduce_algorithm,
            "comm": comm,
            "checkpoint_every": checkpoint_every,
            "on_nan": on_nan,
            "max_recoveries": max_recoveries,
            "adaptive_restart": adaptive_restart,
            "resilience": stats.as_meta(),
        },
    )
