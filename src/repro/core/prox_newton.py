"""Proximal Newton method (paper Alg. 1) with pluggable inner solvers.

Each outer iteration builds the quadratic model of Eq. (19) around the
current iterate,

.. math::

    z_n = \\operatorname*{argmin}_y \\tfrac12 (y-w_n)^T H_n (y-w_n)
          + \\nabla f(w_n)^T (y - w_n) + g(y),

approximately minimizes it with a first-order inner solver, and steps
``w_{n+1} = w_n + γ_n (z_n − w_n)``. The Hessian approximation ``H_n`` is
either exact or the uniformly-sampled ``(1/m̄) X_S X_Sᵀ`` (paper §3.3 /
§5.5).

:func:`proximal_newton` is the serial method (inner solvers: FISTA on the
quadratic model, or exact coordinate descent).

:func:`proximal_newton_distributed` reproduces the Fig. 7 experiment: the
*inner solver's* communication dominates, and the choice of inner solver
changes the communication pattern:

* ``inner="fista"`` — deterministic FISTA; every inner iteration applies
  the exact Hessian through the distributed data (one d-word allreduce per
  inner iteration).
* ``inner="sfista"`` — stochastic inner solver; every inner iteration
  builds a fresh sampled Hessian (one (d²+d)-word allreduce per inner
  iteration).
* ``inner="rc_sfista"`` — the paper's method; ``k`` sampled blocks per
  allreduce (k(d²+d) words every k inner iterations) and Hessian-reuse
  ``S``.
"""

from __future__ import annotations

import numpy as np

from repro.core._dist_common import (
    UPDATE_FLOPS,
    RankWorkspaces,
    distribute_problem,
    hessian_reuse_update,
)
from repro.core.cd import coordinate_descent_quadratic
from repro.core.fista import fista, momentum_mu, t_next
from repro.core.model import ERMObjective, resolve_objective
from repro.core.objectives import QuadraticModel
from repro.core.proximal import L1Prox, soft_threshold
from repro.core.results import History, SolveResult
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.distsim.machine import MachineSpec
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryCallback
from repro.runtime import Checkpoint, ResilientLoop, RuntimeConfig, build_host_backend, resolve_runtime
from repro.sparse.ops import GramWorkspace, sampled_gram
from repro.utils.rng import RandomState, as_generator, minibatch_size, sample_indices
from repro.utils.validation import check_in_range, check_positive

__all__ = ["proximal_newton", "proximal_newton_distributed"]


def proximal_newton(
    problem: ERMObjective,
    *,
    n_outer: int = 10,
    inner: str = "fista",
    inner_iters: int = 50,
    b_hessian: float = 1.0,
    damping: float = 1.0,
    line_search: bool = False,
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    w0: np.ndarray | None = None,
) -> SolveResult:
    """Serial proximal Newton (Alg. 1).

    Parameters
    ----------
    inner:
        ``"fista"`` (accelerated proximal gradient on the model) or
        ``"cd"`` (exact coordinate minimization, ``inner_iters`` epochs).
    b_hessian:
        Hessian sampling rate; 1.0 uses the exact Hessian.
    damping:
        Step ``γ_n`` applied to the Newton direction (Alg. 1 line 6).
    line_search:
        Backtracking on ``γ_n``: halve the step until ``F`` does not
        increase (Lee–Sun–Saunders-style globalization). Makes PN robust
        when the sampled Hessian misestimates curvature; a full step is
        tried first, so well-behaved problems are unaffected.
    """
    if n_outer < 1 or inner_iters < 1:
        raise ValidationError("n_outer and inner_iters must be >= 1")
    if inner not in ("fista", "cd"):
        raise ValidationError(f"inner must be 'fista' or 'cd', got {inner!r}")
    check_in_range(b_hessian, "b_hessian", 0.0, 1.0, low_inclusive=False)
    check_positive(damping, "damping")
    stopping = stopping or StoppingCriterion()
    # Inherit the problem's own (loss, penalty); squared+plain-l1 keeps the
    # historical inner prox verbatim. The exact-CD inner solver minimizes
    # the l1 model in closed form and supports no other penalty.
    resolved = resolve_objective(problem)
    if not resolved.penalty.is_plain_l1(problem.lam):
        if inner == "cd":
            raise ValidationError(
                "inner='cd' supports only the plain l1 penalty; use "
                f"inner='fista' for {resolved.penalty.spec!r}"
            )
        inner_prox = resolved.penalty
    else:
        inner_prox = None  # legacy: L1Prox(lam) below, byte-identical
    rng = as_generator(seed)
    d, lam = problem.d, problem.lam

    w = np.zeros(d) if w0 is None else np.asarray(w0, dtype=np.float64).copy()
    if w.shape != (d,):
        raise ValidationError(f"w0 must have shape ({d},), got {w.shape}")
    mbar = minibatch_size(problem.m, b_hessian) if b_hessian < 1.0 else problem.m
    # Scratch for the sampled-Hessian branch, reused across outer rounds
    # (H itself is freshly allocated each time — the model keeps it).
    gram_ws = GramWorkspace(d, mbar) if b_hessian < 1.0 else None

    history = History()
    prev_obj: float | None = None
    converged = False
    outer_done = 0
    # Constant-curvature problems (squared loss) keep the historical
    # cached-Hessian / data-only sampled branches; only w-dependent
    # curvature (e.g. logistic) routes through hessian_at.
    has_pointwise_hessian = hasattr(problem, "hessian_at") and not getattr(
        problem, "constant_curvature", False
    )
    for n in range(1, n_outer + 1):
        grad = problem.gradient(w)
        if has_pointwise_hessian:
            # General ERM objectives (e.g. logistic) expose curvature at the
            # current iterate — Alg. 1 line 3 in its general form.
            H = problem.hessian_at(w)
        elif b_hessian >= 1.0:
            H = problem.hessian
        else:
            idx = sample_indices(rng, problem.m, mbar)
            H = sampled_gram(problem.X, idx, workspace=gram_ws)
        model = QuadraticModel.from_linearization(H, grad, w)
        if inner == "fista":
            L = model.lipschitz()
            step = 1.0 / L if L > 0 else 1.0
            z = fista(
                model,
                prox=inner_prox if inner_prox is not None else L1Prox(lam),
                w0=w,
                step_size=step,
                max_iter=inner_iters,
                monitor_every=max(1, inner_iters),
            ).w
        else:
            z = coordinate_descent_quadratic(model.H, model.R, lam, u0=w, max_epochs=inner_iters)
        direction = z - w
        if line_search:
            current = problem.value(w)
            step = damping
            for _bt in range(30):
                candidate = w + step * direction
                if problem.value(candidate) <= current + 1e-12:
                    break
                step *= 0.5
            w = w + step * direction
        else:
            w = w + damping * direction
        outer_done = n

        obj = problem.value(w)
        history.append(n, obj, stopping.rel_error(obj))
        if stopping.satisfied(obj, prev_obj):
            converged = True
            break
        prev_obj = obj

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=outer_done,
        history=history,
        meta={
            "solver": "proximal_newton",
            "inner": inner,
            "inner_iters": inner_iters,
            "b_hessian": b_hessian,
            "damping": damping,
            "line_search": line_search,
        },
    )


def proximal_newton_distributed(
    problem: ERMObjective,
    nranks: int,
    *,
    machine: str | MachineSpec = "comet_effective",
    inner: str = "rc_sfista",
    n_outer: int = 5,
    inner_iters: int = 40,
    k: int = 1,
    S: int = 1,
    b: float = 0.1,
    damping: float = 1.0,
    step_size: float | None = None,
    seed: RandomState = 0,
    stopping: StoppingCriterion | None = None,
    monitor_every: int = 1,
    allreduce_algorithm: str = "recursive_doubling",
    comm: str = "dense",
    cluster: BSPCluster | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    recv_timeout: float | None = None,
    checkpoint_every: int = 0,
    on_nan: str | None = None,
    max_recoveries: int = 3,
    telemetry: TelemetryCallback | None = None,
    metrics: MetricsRegistry | None = None,
    runtime: RuntimeConfig | None = None,
) -> SolveResult:
    """Distributed PN (Fig. 7 experiment) — see module docstring.

    The subproblem iterates run FISTA-style accelerated steps; the inner
    solver choice controls where the data for ``∇Φ`` comes from and hence
    the communication pattern. ``step_size`` is the inner γ (defaults to
    the problem's 1/L, shared by all variants for comparability).

    ``comm`` selects the collective encoding for every allreduce (gradient,
    Hessian-vector and sampled-block phases): ``"dense"``, ``"sparse"``
    (index+value, O(nnz_union) words) or ``"auto"`` (per-phase
    stream-and-switch on measured density, logged into the trace).

    Runtime
    -------
    runtime:
        A :class:`~repro.runtime.RuntimeConfig` bundling the execution
        knobs (machine/comm, faults, retry, recv_timeout, checkpointing
        every ``checkpoint_every`` *outer* iterations with bit-exact
        rollback replay, ``on_nan`` screening of every collective result
        and monitored objective, telemetry, metrics). The individual
        kwargs remain accepted but cannot be combined with ``runtime=``;
        the resilience/observability ones are deprecated as kwargs.
        ``telemetry`` receives one record per inner iteration
        (``objective=None``, ``phase="inner"``) plus one per monitored
        outer boundary (``phase="outer"``); both observers are strictly
        out of band.
    """
    config = resolve_runtime(
        runtime,
        machine=machine,
        allreduce_algorithm=allreduce_algorithm,
        comm=comm,
        cluster=cluster,
        faults=faults,
        retry=retry,
        recv_timeout=recv_timeout,
        checkpoint_every=checkpoint_every,
        on_nan=on_nan,
        max_recoveries=max_recoveries,
        telemetry=telemetry,
        metrics=metrics,
    )
    if inner not in ("fista", "sfista", "rc_sfista"):
        raise ValidationError(f"inner must be fista|sfista|rc_sfista, got {inner!r}")
    if inner != "rc_sfista" and (k != 1 or S != 1):
        raise ValidationError("k and S only apply to the rc_sfista inner solver")
    if n_outer < 1 or inner_iters < 1 or k < 1 or S < 1:
        raise ValidationError("n_outer, inner_iters, k, S must be >= 1")
    if monitor_every < 1:
        raise ValidationError(f"monitor_every must be >= 1, got {monitor_every}")
    stopping = stopping or StoppingCriterion()
    # Legacy squared+l1 keeps every historical branch byte-identical; any
    # other loss/penalty runs the curvature-weighted general path with the
    # same payload sizes (blocks weighted at the outer iterate — the §3.3
    # prox-Newton linearization point).
    resolved = resolve_objective(problem, loss=config.loss, penalty=config.penalty)
    view = resolved.objective
    general = not resolved.legacy
    rng = as_generator(seed)
    d, lam = problem.d, problem.lam
    gamma = (
        check_positive(step_size, "step_size") if step_size is not None else view.default_step()
    )
    thresh = lam * gamma
    mbar = minibatch_size(problem.m, b)
    # Proximal-point damping of the Hessian-reuse subproblem (see rc_sfista).
    eps_reg = (
        0.25 * view.sampled_hessian_deviation(mbar)
        if (inner == "rc_sfista" and S > 1)
        else 0.0
    )

    data = distribute_problem(problem, nranks)
    backend = build_host_backend(config, nranks)
    loop = ResilientLoop(backend, config, solver="proximal_newton_distributed")
    loop.step_size = gamma
    # Reusable scratch for the sampled-block stages (bit-identical): one
    # shared workspace, or one per rank under a parallel map_ranks. The
    # general path builds curvature-weighted blocks without workspaces.
    workspaces = (
        RankWorkspaces(nranks, d, mbar, parallel=backend.parallel_ranks)
        if config.gram_workspace and not general
        else None
    )
    loop.workspace = workspaces
    max_block = k if inner == "rc_sfista" else 1
    g_bufs = (
        [np.empty(max_block * d * d) for _ in range(nranks)]
        if workspaces is not None
        else None
    )
    loop.start(
        {
            "nranks": nranks,
            "inner": inner,
            "n_outer": n_outer,
            "inner_iters": inner_iters,
            "k": k,
            "S": S,
            "b": b,
            "damping": damping,
            "step_size": gamma,
            "loss": resolved.loss.name,
            "penalty": resolved.penalty.spec,
            "comm": config.comm,
            "comm_topology": config.comm_topology,
            "comm_compress": config.comm_compress,
            "machine": backend.machine_name,
            "checkpoint_every": config.checkpoint_every,
            "on_nan": config.on_nan,
        }
    )

    def dist_full_gradient(point: np.ndarray) -> np.ndarray:
        if general:
            def contribution(p: int):
                return data.ranks[p].loss_gradient_contribution(
                    point, problem.m, resolved.loss
                )
        else:
            def contribution(p: int):
                return data.ranks[p].full_gradient_contribution(point, problem.m)
        results = backend.map_ranks(contribution, nranks)
        backend.compute([fl for _g, fl in results], label="full_gradient")
        return loop.allreduce([g for g, _fl in results], "allreduce_grad")

    def local_curvatures(point: np.ndarray) -> list[np.ndarray]:
        """Per-rank curvature weights ``ℓ''(X_pᵀ point, y_p)`` (general path)."""
        results = backend.map_ranks(
            lambda p: data.ranks[p].local_predictions(point), nranks
        )
        backend.compute(
            [fl + 2.0 * data.ranks[p].m_local for p, (_z, fl) in enumerate(results)],
            label="curvature",
        )
        return [
            resolved.loss.curvature(z, data.ranks[p].y_local)
            for p, (z, _fl) in enumerate(results)
        ]

    # Curvature weights at the current outer iterate (general path only);
    # refreshed at the top of every outer round.
    curv: list[np.ndarray] | None = None

    def dist_hessian_apply(vec: np.ndarray) -> np.ndarray:
        """(Weighted) Hessian-vector product through the distributed data."""

        def apply_rank(p: int) -> tuple[np.ndarray, float]:
            rd = data.ranks[p]
            if rd.m_local == 0:
                return np.zeros(d), 0.0
            if isinstance(rd.X_local, np.ndarray):
                z = rd.X_local.T @ vec
                hv = rd.X_local @ (curv[p] * z if general else z) / problem.m
                return hv, float(4 * rd.X_local.shape[0] * rd.m_local)
            z = rd.X_local.rmatvec(vec)
            hv = rd.X_local.matvec(curv[p] * z if general else z) / problem.m
            return hv, float(4 * rd.X_local.nnz)

        results = backend.map_ranks(apply_rank, nranks)
        backend.compute([fl for _hv, fl in results], label="hessian_apply")
        return loop.allreduce([hv for hv, _fl in results], "allreduce_Hv")

    def sampled_blocks(count: int) -> np.ndarray:
        """Stages A–C for *count* fresh sampled Hessians: one allreduce.

        Sample sets are drawn up front so the rng stream is independent of
        how the per-rank map executes (serial or parallel).
        """
        idx_sets = [sample_indices(rng, problem.m, mbar) for _ in range(count)]
        if general:
            # Curvature-weighted blocks at the outer iterate — the same
            # count·d² payload as the data-only Gram blocks below.
            packed = [np.empty(0)] * nranks

            def build_rank(p: int) -> float:
                rd = data.ranks[p]
                chunks: list[np.ndarray] = []
                fl_sum = 0.0
                for idx in idx_sets:
                    local_idx = rd._restrict(idx)
                    if local_idx.size == 0:
                        chunks.append(np.zeros(d * d))
                        continue
                    if isinstance(rd.X_local, np.ndarray):
                        A = rd.X_local[:, local_idx]
                    else:
                        A = rd.X_local.select_columns(local_idx).to_dense()
                    c = curv[p][local_idx]
                    H_p = (A * c[None, :]) @ A.T / mbar
                    chunks.append(H_p.ravel())
                    fl_sum += float(
                        2.0 * d * d * local_idx.size + d * local_idx.size
                    )
                packed[p] = np.concatenate(chunks)
                return fl_sum

            backend.compute(
                np.asarray(backend.map_ranks(build_rank, nranks)),
                label="hessian_blocks",
            )
            return loop.allreduce(packed, "allreduce_G")
        if g_bufs is not None:
            packed = [buf[: count * d * d] for buf in g_bufs]

            def build_rank(p: int) -> float:
                rd = data.ranks[p]
                ws = workspaces[p]
                buf = packed[p]
                fl_sum = 0.0
                for j, idx in enumerate(idx_sets):
                    H_out = buf[j * d * d : (j + 1) * d * d].reshape(d, d)
                    _, _local, fl = rd.sampled_hessian_contribution(
                        idx, mbar, d, workspace=ws, out=H_out
                    )
                    fl_sum += fl
                return fl_sum

            backend.compute(
                np.asarray(backend.map_ranks(build_rank, nranks)),
                label="hessian_blocks",
            )
            return loop.allreduce(packed, "allreduce_G")

        packed = [np.empty(0)] * nranks

        def build_rank(p: int) -> float:
            rd = data.ranks[p]
            chunks: list[np.ndarray] = []
            fl_sum = 0.0
            for idx in idx_sets:
                H_p, _local, fl = rd.sampled_hessian_contribution(idx, mbar, d)
                chunks.append(H_p.ravel())
                fl_sum += fl
            packed[p] = np.concatenate(chunks)
            return fl_sum

        backend.compute(
            np.asarray(backend.map_ranks(build_rank, nranks)), label="hessian_blocks"
        )
        return loop.allreduce(packed, "allreduce_G")

    w = np.zeros(d)
    history = History()
    prev_obj: float | None = None
    converged = False
    outer_done = 0
    start_n = 1
    inner_count = 0

    def capture(next_n: int) -> Checkpoint:
        return Checkpoint.capture(
            arrays={"w": w},
            scalars={"n": next_n, "prev_obj": prev_obj, "outer_done": outer_done},
            rng=rng,
            history_len=len(history),
        )

    def repartition(new_nranks: int, lost_ranks) -> float:
        """Shrink to *new_nranks* after an elastic pool loss (see driver).

        Returns the lost ranks' row-block words (rows of X plus y) that
        must travel to their new owners, charged as recovery traffic.
        """
        nonlocal nranks, data, workspaces, g_bufs
        moved = float(
            (d + 1) * sum(data.partition.local_size(r) for r in lost_ranks)
        )
        nranks = new_nranks
        data = distribute_problem(problem, new_nranks)
        if workspaces is not None:
            workspaces = RankWorkspaces(
                new_nranks, d, mbar, parallel=backend.parallel_ranks
            )
            loop.workspace = workspaces
            g_bufs = [np.empty(max_block * d * d) for _ in range(new_nranks)]
        return moved

    def restore(ck: Checkpoint) -> None:
        nonlocal w, prev_obj, outer_done, start_n, converged
        w = ck.array("w")
        prev_obj = ck.scalars["prev_obj"]
        outer_done = ck.scalars["outer_done"]
        start_n = ck.scalars["n"]
        converged = False
        ck.restore_rng(rng)
        history.truncate(ck.history_len)
        # loop.comm_rounds is not restored: replayed collectives really
        # happen (and are really charged) a second time.

    def main_loop() -> None:
        nonlocal w, prev_obj, converged, outer_done, inner_count, curv
        for n in range(start_n, n_outer + 1):
            if general:
                curv = local_curvatures(w)
            grad = dist_full_gradient(w)

            # Inner solve of Eq. (19) warm-started at w.
            u = w.copy()
            u_prev = u.copy()
            t_prev = 1.0
            if inner == "fista":
                for _i in range(inner_iters):
                    t_cur = t_next(t_prev)
                    mu = momentum_mu(t_prev, t_cur)
                    v = u + mu * (u - u_prev)
                    g = dist_hessian_apply(v - w) + grad
                    backend.compute(8.0 * d, label="update")
                    if general:
                        u_new = resolved.penalty.prox(v - gamma * g, gamma)
                    else:
                        u_new = soft_threshold(v - gamma * g, thresh)
                    u_prev, u = u, u_new
                    t_prev = t_cur
                    inner_count += 1
                    loop.emit(outer=n, inner=inner_count, objective=None)
            else:
                block_k = k if inner == "rc_sfista" else 1
                reuse_S = S if inner == "rc_sfista" else 1
                n_rounds = -(-inner_iters // block_k)
                done = 0
                for _rnd in range(n_rounds):
                    block = min(block_k, inner_iters - done)
                    G = sampled_blocks(block)
                    for j in range(block):
                        H_j = G[j * d * d : (j + 1) * d * d].reshape(d, d)
                        # R of the linearized model with sampled H: Hw − ∇f(w).
                        R_j = H_j @ w - grad
                        backend.compute(2.0 * d * d, label="model_rhs")
                        t_cur = t_next(t_prev)
                        mu = momentum_mu(t_prev, t_cur)
                        v = u + mu * (u - u_prev)
                        z = hessian_reuse_update(
                            H_j, R_j, v, gamma=gamma, thresh=thresh, S=reuse_S,
                            eps_reg=eps_reg,
                            prox=resolved.penalty.prox if general else None,
                        )
                        for _s in range(reuse_S):  # Hessian-reuse prox steps
                            backend.compute(UPDATE_FLOPS(d), label="update")
                        u_prev, u = u, z
                        t_prev = t_cur
                        done += 1
                        inner_count += 1
                        loop.emit(outer=n, inner=inner_count, objective=None)

            w = w + damping * (u - w)
            outer_done = n
            if n % monitor_every == 0 or n == n_outer:
                obj = view.value(w)  # out of band
                # A non-finite iterate cannot be fixed by re-communicating.
                loop.screen_objective(obj)
                history.append(
                    n, obj, stopping.rel_error(obj), sim_time=backend.elapsed,
                    comm_round=loop.comm_rounds,
                )
                loop.emit(outer=n, inner=inner_count, objective=obj, phase="outer")
                if stopping.satisfied(obj, prev_obj):
                    converged = True
                    return
                prev_obj = obj
            if config.checkpoint_every and n % config.checkpoint_every == 0 and n < n_outer:
                loop.commit_checkpoint(capture(n + 1))

    # The free initial checkpoint (capture=) means recovery without
    # periodic checkpoints restarts from scratch.
    try:
        loop.run(
            main_loop, capture=lambda: capture(1), restore=restore, repartition=repartition
        )
    finally:
        # Real-parallelism backends hold worker processes / thread pools;
        # their cost ledgers survive close, so cost_summary() below and
        # the trace remain valid.
        backend.close()

    loop.finish(
        {
            "converged": converged,
            "n_outer_done": outer_done,
            "n_inner_done": inner_count,
            "n_comm_rounds": loop.comm_rounds,
        }
    )

    return SolveResult(
        w=w,
        converged=converged,
        n_iterations=outer_done,
        history=history,
        n_comm_rounds=loop.comm_rounds,
        cost=backend.cost_summary(),
        meta={
            "solver": "proximal_newton_distributed",
            "inner": inner,
            "n_outer": n_outer,
            "inner_iters": inner_iters,
            "k": k,
            "S": S,
            "b": b,
            "loss": resolved.loss.name,
            "penalty": resolved.penalty.spec,
            "nranks": nranks,
            "machine": backend.machine_name,
            "comm": config.comm,
            "comm_topology": config.comm_topology,
            "comm_compress": config.comm_compress,
            "checkpoint_every": config.checkpoint_every,
            "on_nan": config.on_nan,
            "max_recoveries": config.max_recoveries,
            "resilience": loop.stats.as_meta(),
        },
    )
