"""Shared machinery for the distributed solvers.

Implements the data placement of paper §4.1 / Fig. 1: ``X`` (features ×
samples) is partitioned *column-wise* and ``y`` *row-wise* over ``P``
ranks; the iterate ``w`` and all update state are replicated. Sampling
decisions are derived from a seed shared by all ranks, so the global index
set ``I_n`` is agreed upon without communication — each rank keeps the
indices it owns (paper §5.5: "initializing all processors with the same
seed").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ERMObjective
from repro.core.proximal import soft_threshold
from repro.exceptions import ValidationError
from repro.sparse.csr import CSCMatrix, CSRMatrix
from repro.sparse.ops import GramWorkspace, gram_flops, rhs_flops, sampled_gram, sampled_rhs
from repro.sparse.partition import ColumnPartition, partition_columns

__all__ = [
    "RankData",
    "RankWorkspaces",
    "DistributedData",
    "distribute_problem",
    "hessian_reuse_update",
    "UPDATE_FLOPS",
]


class RankWorkspaces:
    """Gram scratch for the per-rank stages, safe under ``map_ranks``.

    :class:`~repro.sparse.ops.GramWorkspace` is shared mutable scratch —
    correct when ranks run one after another, corrupt when a backend with
    ``parallel_ranks`` runs the per-rank closures concurrently. This
    wrapper hands rank ``p`` the right instance either way: one shared
    workspace on serial-map backends (the historical allocation profile),
    a private workspace per rank under parallel maps. Results are
    bit-identical in both layouts; only buffer reuse differs.

    Exposes the summed ``reuses`` counter so
    :class:`~repro.runtime.driver.ResilientLoop` can keep reporting the
    ``gram_workspace_reuses`` perf stat unchanged.
    """

    def __init__(self, nranks: int, d: int, mbar: int, *, parallel: bool) -> None:
        if parallel:
            self._workspaces = [GramWorkspace(d, mbar) for _ in range(nranks)]
        else:
            shared = GramWorkspace(d, mbar)
            self._workspaces = [shared] * nranks

    def __getitem__(self, rank: int) -> GramWorkspace:
        return self._workspaces[rank]

    @property
    def reuses(self) -> int:
        distinct = {id(ws): ws for ws in self._workspaces}
        return sum(ws.reuses for ws in distinct.values())


def hessian_reuse_update(
    H: np.ndarray,
    R: np.ndarray,
    v: np.ndarray,
    *,
    gamma: float,
    thresh: float | None = None,
    S: int = 1,
    eps_reg: float = 0.0,
    prox=None,
) -> np.ndarray:
    """``S`` Hessian-reuse prox steps on the sampled model (Eqs. 20–23).

    The replicated stage-D arithmetic shared by every execution substrate
    (serial, BSP host view, SPMD rank programs): starting from the
    momentum point ``v``, iterate ``u ← prox(u − γ(Hu − R + ε(u − v)))``.
    ``S=1, eps_reg=0`` is the plain SFISTA step. The caller charges the
    ``UPDATE_FLOPS`` cost — this function is pure arithmetic.

    ``prox`` generalizes the penalty: ``None`` (the legacy l1 path, kept
    verbatim for byte-identity) soft-thresholds at ``thresh = λγ``; a
    callable ``prox(w, gamma)`` applies any
    :class:`~repro.core.model.Regularizer` instead.
    """
    u = v
    for _s in range(S):
        step_dir = H @ u - R + eps_reg * (u - v)
        if prox is None:
            u = soft_threshold(u - gamma * step_dir, thresh)
        else:
            u = prox(u - gamma * step_dir, gamma)
    return u


def UPDATE_FLOPS(d: int) -> float:
    """Per-rank flops of one replicated inner update: d×d GEMV + vector ops.

    Must stay in sync with :func:`repro.perf.model.update_flops_per_step`
    (the Table 1 model) — the tests assert the two agree.
    """
    return 2.0 * d * d + 8.0 * d


@dataclass
class RankData:
    """One rank's share of the data."""

    rank: int
    X_local: np.ndarray | CSCMatrix  # d × m_local column block
    y_local: np.ndarray
    col_offset: int  # global index of the first owned column

    @property
    def m_local(self) -> int:
        return self.X_local.shape[1]

    def sampled_hessian_contribution(
        self,
        global_idx: np.ndarray,
        mbar: int,
        d: int,
        *,
        workspace=None,
        out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Local contribution ``(1/m̄) X_p,S X_p,Sᵀ`` plus its flop cost.

        Returns ``(H_p, local_idx, flops)`` where summing ``H_p`` over
        ranks gives the global sampled Hessian exactly. ``workspace``/
        ``out`` (see :func:`repro.sparse.ops.sampled_gram`) make the
        computation allocation-free with bit-identical results.
        """
        local_idx = self._restrict(global_idx)
        if local_idx.size == 0:
            if out is None:
                return np.zeros((d, d)), local_idx, 0.0
            out.fill(0.0)
            return out, local_idx, 0.0
        H_p = sampled_gram(
            self.X_local, local_idx, scale=1.0 / mbar, workspace=workspace, out=out
        )
        flops = float(gram_flops(self.X_local, local_idx))
        return H_p, local_idx, flops

    def sampled_rhs_contribution(
        self,
        local_idx: np.ndarray,
        mbar: int,
        d: int,
        *,
        workspace=None,
        out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, float]:
        """Local contribution ``(1/m̄) X_p,S y_p,S`` plus its flop cost."""
        if local_idx.size == 0:
            if out is None:
                return np.zeros(d), 0.0
            out.fill(0.0)
            return out, 0.0
        R_p = sampled_rhs(
            self.X_local, self.y_local, local_idx, scale=1.0 / mbar,
            workspace=workspace, out=out,
        )
        return R_p, float(rhs_flops(self.X_local, local_idx))

    def full_gradient_contribution(self, w: np.ndarray, m: int) -> tuple[np.ndarray, float]:
        """Local contribution ``(1/m) X_p (X_pᵀ w − y_p)`` plus flops."""
        if self.m_local == 0:
            return np.zeros(w.shape[0]), 0.0
        if isinstance(self.X_local, np.ndarray):
            r = self.X_local.T @ w - self.y_local
            g = self.X_local @ r / m
            flops = float(4 * self.X_local.shape[0] * self.m_local)
        else:
            r = self.X_local.rmatvec(w) - self.y_local
            g = self.X_local.matvec(r) / m
            flops = float(4 * self.X_local.nnz)
        return g, flops

    # ---------------- generalized-loss contributions ------------------- #
    # The methods below power the model-anchored path for non-squared
    # losses (RuntimeConfig(loss=...)): curvature and gradients are
    # evaluated at a round-start anchor, so the k sampled blocks of one
    # stage-C payload share a single linearization point (the §3.3
    # prox-Newton observation). The column partition places every sample
    # wholly on one rank, so predictions z_i = x_iᵀw are local.

    def local_predictions(self, w: np.ndarray) -> tuple[np.ndarray, float]:
        """Per-sample local predictions ``z_p = X_pᵀ w`` plus flops."""
        if self.m_local == 0:
            return np.zeros(0), 0.0
        if isinstance(self.X_local, np.ndarray):
            z = self.X_local.T @ w
            flops = float(2 * self.X_local.shape[0] * self.m_local)
        else:
            z = self.X_local.rmatvec(w)
            flops = float(2 * self.X_local.nnz)
        return z, flops

    def loss_gradient_contribution(
        self, w: np.ndarray, m: int, loss
    ) -> tuple[np.ndarray, float]:
        """Local general-loss gradient ``(1/m) X_p ℓ'(X_pᵀw, y_p)`` + flops."""
        if self.m_local == 0:
            return np.zeros(w.shape[0]), 0.0
        z, fl_z = self.local_predictions(w)
        gvec = loss.grad(z, self.y_local)
        if isinstance(self.X_local, np.ndarray):
            g = self.X_local @ gvec / m
            flops = fl_z + float(2 * self.X_local.shape[0] * self.m_local)
        else:
            g = self.X_local.matvec(gvec) / m
            flops = fl_z + float(2 * self.X_local.nnz)
        return g, flops + float(2 * self.m_local)

    def model_block_contribution(
        self,
        global_idx: np.ndarray,
        mbar: int,
        d: int,
        *,
        loss,
        z_round: np.ndarray,
        z_anchor: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Curvature-weighted block ``(H_p, g_p, flops)`` at the round anchor.

        ``H_p = (1/m̄) X_{p,S} diag(ℓ''(z)) X_{p,S}ᵀ`` and
        ``g_p = (1/m̄) X_{p,S} ℓ'(z)`` (plain) or the SVRG difference
        ``(1/m̄) X_{p,S} (ℓ'(z_round) − ℓ'(z_anchor))``; summing over ranks
        gives the global weighted sampled Hessian / gradient estimate
        exactly. ``z_round``/``z_anchor`` are this rank's *local*
        prediction vectors (length ``m_local``).
        """
        local_idx = self._restrict(global_idx)
        if local_idx.size == 0:
            return np.zeros((d, d)), np.zeros(d), 0.0
        if isinstance(self.X_local, np.ndarray):
            A = self.X_local[:, local_idx]
        else:
            A = self.X_local.select_columns(local_idx).to_dense()
        ys = self.y_local[local_idx]
        zr = z_round[local_idx]
        c = loss.curvature(zr, ys)
        H_p = (A * c[None, :]) @ A.T / mbar
        gvec = loss.grad(zr, ys)
        if z_anchor is not None:
            gvec = gvec - loss.grad(z_anchor[local_idx], ys)
        g_p = A @ gvec / mbar
        n = local_idx.size
        flops = float(2.0 * d * d * n + d * n + 2.0 * d * n + 6.0 * n)
        return H_p, g_p, flops

    def _restrict(self, global_idx: np.ndarray) -> np.ndarray:
        lo = self.col_offset
        hi = lo + self.m_local
        mine = global_idx[(global_idx >= lo) & (global_idx < hi)]
        return mine - lo


@dataclass
class DistributedData:
    """The problem's data scattered over all ranks."""

    problem: ERMObjective
    partition: ColumnPartition
    ranks: list[RankData]

    @property
    def nranks(self) -> int:
        return len(self.ranks)


def distribute_problem(problem: ERMObjective, nranks: int) -> DistributedData:
    """Column-partition *problem* over *nranks* ranks (paper §4.1)."""
    if nranks < 1:
        raise ValidationError(f"nranks must be >= 1, got {nranks}")
    part = partition_columns(problem.m, nranks)
    X = problem.X
    csc: CSCMatrix | None = None
    if isinstance(X, CSRMatrix):
        csc = X.to_csc()
    elif isinstance(X, CSCMatrix):
        csc = X
    ranks = []
    for p in range(nranks):
        sl = part.local_slice(p)
        if csc is not None:
            block: np.ndarray | CSCMatrix = csc.select_columns(
                np.arange(sl.start, sl.stop, dtype=np.int64)
            )
        else:
            block = X[:, sl]  # type: ignore[index]
        ranks.append(
            RankData(
                rank=p,
                X_local=block,
                y_local=problem.y[sl],
                col_offset=sl.start,
            )
        )
    return DistributedData(problem=problem, partition=part, ranks=ranks)
