"""High-accuracy reference solver — the paper's TFOCS stand-in.

The paper obtains the optimum ``w*`` from TFOCS at tolerance 1e-8 and
measures every solver's *relative objective error* against ``F(w*)``
(§5.1). Here the reference is FISTA with function-value adaptive restart
run until the lasso subgradient-optimality residual (∞-norm) falls below
``tol``, cross-checked in the tests against coordinate descent and scipy.
"""

from __future__ import annotations

import numpy as np

from repro.core.fista import fista
from repro.core.objectives import L1LeastSquares
from repro.core.results import SolveResult
from repro.exceptions import ConvergenceError
from repro.utils.validation import check_positive

__all__ = ["solve_reference"]


def solve_reference(
    problem: L1LeastSquares,
    *,
    tol: float = 1e-8,
    max_rounds: int = 40,
    iters_per_round: int = 500,
    raise_on_failure: bool = False,
) -> SolveResult:
    """Solve *problem* to subgradient optimality *tol*.

    Runs FISTA-with-restart in rounds, checking the optimality residual
    between rounds (the residual check costs a full gradient, so it is not
    done every iteration). The returned result's ``meta`` includes
    ``fstar`` (the certified optimal value) and ``optimality_residual``.

    Raises
    ------
    ConvergenceError
        If ``raise_on_failure`` and the residual never reaches *tol*
        within ``max_rounds × iters_per_round`` iterations. The error's
        ``partial`` attribute carries the best :class:`SolveResult`
        reached, so callers can degrade gracefully instead of losing the
        whole run.
    """
    check_positive(tol, "tol")
    step = problem.default_step()
    w = np.zeros(problem.d)
    total_iters = 0
    residual = np.inf
    for _round in range(max_rounds):
        result = fista(
            problem,
            step_size=step,
            max_iter=iters_per_round,
            w0=w,
            restart=True,
            monitor_every=25,
        )
        w = result.w
        total_iters += result.n_iterations
        residual = problem.optimality_residual(w)
        if residual <= tol:
            break
    converged = residual <= tol
    fstar = problem.value(w)
    solve_result = SolveResult(
        w=w,
        converged=converged,
        n_iterations=total_iters,
        meta={
            "solver": "reference",
            "fstar": fstar,
            "optimality_residual": residual,
            "tol": tol,
        },
    )
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"reference solve stalled at optimality residual {residual:.3e} "
            f"after {total_iters} iterations (target {tol:.1e})",
            partial=solve_result,
        )
    return solve_result
