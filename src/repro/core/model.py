"""Generalized objective layer: losses, regularizers, and ERM objectives.

The paper frames Eq. (1) as general empirical risk minimization —
"including logistic regression and regularized least squares" (§2.1):

.. math::

    F(w) = \\underbrace{\\frac{1}{m} \\sum_i \\ell(x_i^T w, y_i)}_{f(w)}
           + \\underbrace{g(w)}_{\\text{prox-friendly penalty}}.

This module is the one place that knows what ``ℓ`` and ``g`` can be:

* :class:`SmoothLoss` — a scalar loss ``ℓ(z, y)`` with per-sample value,
  derivative and curvature (``SquaredLoss``, ``LogisticLoss``,
  ``SquaredHingeLoss``).
* :class:`Regularizer` — a *named* penalty wrapping the
  :class:`~repro.core.proximal.ProximalOperator` hierarchy (``l1``,
  ``elastic_net``, ``group_l1``) so configs, specs, and fingerprints can
  refer to it canonically.
* :class:`ERMObjective` — the generic data-backed composite objective
  built from any (loss, penalty) pair. ``L1LeastSquares`` and
  ``L1Logistic`` are its specialized subclasses (their numerics are
  unchanged — bit-for-bit); arbitrary combinations instantiate the base
  class directly.
* :func:`resolve_objective` — the bridge the runtime solvers use: given a
  problem plus the ``RuntimeConfig(loss=..., penalty=...)`` overrides it
  returns the objective to run, the loss/penalty pair, and whether the
  combination is the *legacy* squared+l1 one — in which case the solvers
  take their historical code path and stay byte-identical.

Adding a loss
-------------
Subclass :class:`SmoothLoss`, implement ``values``/``grad``/``curvature``
(all per-sample, vectorized over ``z``), set ``curvature_bound`` (a global
upper bound on ``ℓ''``) and register it in ``_LOSS_FACTORIES``. Every
solver, the serving layer and the CLI pick it up through
:func:`make_loss`; the central-difference property tests in
``tests/test_core/test_model.py`` cover it automatically once added to
their loss list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import cached_property
from typing import Any

import numpy as np

from repro.core.proximal import (
    ElasticNetProx,
    GroupL1Prox,
    L1Prox,
    ProximalOperator,
)
from repro.exceptions import ShapeError, ValidationError
from repro.sparse.csr import CSCMatrix, CSRMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive, check_vector

__all__ = [
    "LOSSES",
    "PENALTIES",
    "SmoothLoss",
    "SquaredLoss",
    "LogisticLoss",
    "SquaredHingeLoss",
    "Regularizer",
    "ERMObjective",
    "ResolvedObjective",
    "make_loss",
    "make_penalty",
    "parse_penalty_spec",
    "resolve_objective",
]

Matrix = np.ndarray | CSRMatrix | CSCMatrix

#: Canonical loss names accepted by configs, specs and the CLI.
LOSSES = ("squared", "logistic", "squared_hinge")
#: Canonical penalty names accepted by configs, specs and the CLI.
PENALTIES = ("l1", "elastic_net", "group_l1")


def _matvec_xt(X: Matrix, w: np.ndarray) -> np.ndarray:
    """Compute ``Xᵀ w`` (per-sample predictions) for any storage format."""
    if isinstance(X, np.ndarray):
        return X.T @ w
    return X.rmatvec(w)


def _matvec_x(X: Matrix, r: np.ndarray) -> np.ndarray:
    """Compute ``X r`` for any storage format."""
    if isinstance(X, np.ndarray):
        return X @ r
    return X.matvec(r)


def _log1pexp(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + e^z)``."""
    out = np.empty_like(z)
    pos = z > 0
    out[pos] = z[pos] + np.log1p(np.exp(-z[pos]))
    out[~pos] = np.log1p(np.exp(z[~pos]))
    return out


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


# --------------------------------------------------------------------- #
# losses
# --------------------------------------------------------------------- #
class SmoothLoss(ABC):
    """A smooth per-sample loss ``ℓ(z, y)`` of the prediction ``z = xᵀw``.

    All three methods are vectorized over samples: given predictions
    ``z`` and labels ``y`` of shape ``(n,)`` they return shape ``(n,)``.
    The ERM smooth part is ``f(w) = (1/m) Σ_i ℓ(z_i, y_i)``, so

    * ``∇f(w) = (1/m) X ℓ'(z, y)``  (``grad`` is ``dℓ/dz``), and
    * ``∇²f(w) = (1/m) X diag(ℓ''(z, y)) Xᵀ``  (``curvature`` is
      ``d²ℓ/dz²``) — the weighted Gram every sampled-Hessian stage builds.
    """

    #: canonical name, the key used in configs/specs/fingerprints
    name: str = "abstract"
    #: global upper bound on ``ℓ''`` — scales the squared-loss Lipschitz
    #: and step-size machinery to the general case
    curvature_bound: float = 1.0
    #: ``ℓ''`` independent of ``(z, y)`` (squared loss): the Hessian is the
    #: plain data Gram, constant in ``w`` — solvers may then cache it
    constant_curvature: bool = False
    #: labels restricted to {-1, +1}
    classification: bool = False

    @abstractmethod
    def values(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample losses ``ℓ(z_i, y_i)``."""

    @abstractmethod
    def grad(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample derivatives ``∂ℓ/∂z``."""

    @abstractmethod
    def curvature(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample second derivatives ``∂²ℓ/∂z²`` (a.e. where kinked)."""

    def validate_labels(self, y: np.ndarray) -> None:
        """Reject labels outside this loss's domain (classification: ±1)."""
        if self.classification and not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValidationError("labels must be in {-1, +1}")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}()"


class SquaredLoss(SmoothLoss):
    """``ℓ(z, y) = ½(z − y)²`` — the paper's least-squares instance."""

    name = "squared"
    curvature_bound = 1.0
    constant_curvature = True

    def values(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        r = z - y
        return 0.5 * r * r

    def grad(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return z - y

    def curvature(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.ones_like(z)


class LogisticLoss(SmoothLoss):
    """``ℓ(z, y) = log(1 + e^{−yz})``, labels in {-1, +1}."""

    name = "logistic"
    curvature_bound = 0.25
    classification = True

    def values(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return _log1pexp(-y * z)

    def grad(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return -y * _sigmoid(-y * z)

    def curvature(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        sig = _sigmoid(y * z)
        return sig * (1.0 - sig)


class SquaredHingeLoss(SmoothLoss):
    """``ℓ(z, y) = ½ max(0, 1 − yz)²`` — smooth (C¹) SVM loss, labels ±1."""

    name = "squared_hinge"
    curvature_bound = 1.0
    classification = True

    def values(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        t = np.maximum(0.0, 1.0 - y * z)
        return 0.5 * t * t

    def grad(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        t = np.maximum(0.0, 1.0 - y * z)
        return -y * t

    def curvature(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        # ℓ'' = 1 on the active side of the (C¹) kink, 0 elsewhere.
        return np.where(1.0 - y * z > 0.0, 1.0, 0.0)


_LOSS_FACTORIES: dict[str, type[SmoothLoss]] = {
    "squared": SquaredLoss,
    "logistic": LogisticLoss,
    "squared_hinge": SquaredHingeLoss,
}


def make_loss(loss: str | SmoothLoss) -> SmoothLoss:
    """Resolve a loss name (or pass an instance through)."""
    if isinstance(loss, SmoothLoss):
        return loss
    factory = _LOSS_FACTORIES.get(loss)
    if factory is None:
        raise ValidationError(
            f"unknown loss {loss!r}; allowed values: {', '.join(LOSSES)}"
        )
    return factory()


# --------------------------------------------------------------------- #
# regularizers
# --------------------------------------------------------------------- #
def parse_penalty_spec(spec: str) -> tuple[str, dict[str, float]]:
    """Parse and validate ``"name"`` / ``"name:k=v,..."`` penalty specs.

    Validation happens *here*, at config-build time — malformed params
    (negative strengths, non-integer group sizes, unknown keys) are
    rejected before any solver starts. Supported forms:

    * ``"l1"`` — no parameters,
    * ``"elastic_net:l2=0.5"`` — ``l2`` is the ridge-to-l1 *ratio*
      (``λ₂ = l2·λ``; default 1.0) so the whole penalty scales with λ,
    * ``"group_l1:size=4"`` — contiguous coordinate groups of ``size``
      (default 4; the last group may be smaller).
    """
    name, sep, tail = str(spec).partition(":")
    if name not in PENALTIES:
        raise ValidationError(
            f"unknown penalty {name!r}; allowed values: {', '.join(PENALTIES)}"
        )
    params: dict[str, float] = {}
    if sep and tail:
        for item in tail.split(","):
            key, eq, val = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValidationError(
                    f"malformed penalty parameter {item!r} in {spec!r}; "
                    "expected key=value"
                )
            try:
                params[key] = float(val)
            except ValueError:
                raise ValidationError(
                    f"penalty parameter {key!r} must be numeric, got {val!r}"
                ) from None
    allowed = {"l1": set(), "elastic_net": {"l2"}, "group_l1": {"size"}}[name]
    unknown = set(params) - allowed
    if unknown:
        raise ValidationError(
            f"penalty {name!r} does not accept parameter(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )
    if name == "elastic_net":
        l2 = params.setdefault("l2", 1.0)
        if not (np.isfinite(l2) and l2 >= 0):
            raise ValidationError(f"elastic_net l2 ratio must be >= 0, got {l2}")
    if name == "group_l1":
        size = params.setdefault("size", 4.0)
        if size != int(size) or int(size) < 1:
            raise ValidationError(
                f"group_l1 size must be a positive integer, got {size}"
            )
        params["size"] = float(int(size))
    return name, params


def canonical_penalty_spec(spec: str) -> str:
    """The canonical string form of a penalty spec (sorted, normalized).

    Used by the serving layer so equivalent specs share one fingerprint
    (``"elastic_net"`` ≡ ``"elastic_net:l2=1.0"``) while distinct
    parameters never collide.
    """
    name, params = parse_penalty_spec(spec)
    if not params:
        return name
    tail = ",".join(f"{k}={params[k]:g}" for k in sorted(params))
    return f"{name}:{tail}"


def _contiguous_groups(d: int, size: int) -> list[np.ndarray]:
    return [np.arange(lo, min(lo + size, d), dtype=np.int64) for lo in range(0, d, size)]


class Regularizer:
    """A named penalty ``g`` wrapping a :class:`ProximalOperator`.

    Carries the canonical ``(name, params, λ)`` identity alongside the
    operator so configs, serve specs and warm-start caches can key on it,
    and :meth:`at_lam` can rebuild the same penalty family at another λ
    (regularization paths, λ-grid serving).
    """

    def __init__(
        self,
        name: str,
        op: ProximalOperator,
        *,
        lam: float,
        params: dict[str, float] | None = None,
    ) -> None:
        self.name = name
        self.op = op
        self.lam = check_positive(lam, "lambda", strict=False)
        self.params = dict(params or {})

    # -- the ProximalOperator surface (duck-compatible) ----------------- #
    def value(self, w: np.ndarray) -> float:
        return self.op.value(w)

    def prox(self, w: np.ndarray, gamma: float) -> np.ndarray:
        return self.op.prox(w, gamma)

    # -- identity -------------------------------------------------------- #
    @property
    def spec(self) -> str:
        if not self.params:
            return self.name
        tail = ",".join(f"{k}={self.params[k]:g}" for k in sorted(self.params))
        return f"{self.name}:{tail}"

    def is_plain_l1(self, lam: float) -> bool:
        """True iff this is exactly ``λ‖·‖₁`` at the given λ — the legacy
        combination whose solver code path is pinned byte-identical."""
        return self.name == "l1" and isinstance(self.op, L1Prox) and self.op.lam == lam

    def at_lam(self, lam: float, d: int | None = None) -> "Regularizer":
        """The same penalty family rebuilt at another λ."""
        return make_penalty(self.spec, lam=lam, d=d)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Regularizer({self.spec!r}, lam={self.lam})"


def make_penalty(
    penalty: str | Regularizer | ProximalOperator,
    *,
    lam: float,
    d: int | None = None,
) -> Regularizer:
    """Build a :class:`Regularizer` from a spec string at strength *lam*.

    ``d`` (the problem dimension) is required for ``group_l1``, whose
    groups tile ``[0, d)``. A prebuilt :class:`Regularizer` passes
    through unchanged; a bare :class:`ProximalOperator` is wrapped under
    the name ``"custom"`` (valid everywhere except serve specs, which
    need a canonical string).
    """
    if isinstance(penalty, Regularizer):
        return penalty
    if isinstance(penalty, ProximalOperator):
        return Regularizer("custom", penalty, lam=lam)
    name, params = parse_penalty_spec(penalty)
    if name == "l1":
        return Regularizer(name, L1Prox(lam), lam=lam)
    if name == "elastic_net":
        return Regularizer(
            name, ElasticNetProx(lam, params["l2"] * lam), lam=lam, params=params
        )
    # group_l1
    if d is None:
        raise ValidationError(
            "group_l1 needs the problem dimension to lay out its groups; "
            "build it through resolve_objective or pass d="
        )
    size = int(params["size"])
    return Regularizer(
        name, GroupL1Prox(lam, _contiguous_groups(d, size)), lam=lam, params=params
    )


# --------------------------------------------------------------------- #
# curvature helpers shared by generic objectives
# --------------------------------------------------------------------- #
def gram_lipschitz(
    X: Matrix, m: int, *, n_iter: int = 100, tol: float = 1e-9, rng: RandomState = 0
) -> float:
    """``λmax((1/m) X Xᵀ)`` via power iteration (loss-independent)."""
    d = X.shape[0]
    gen = as_generator(rng)
    u = gen.standard_normal(d)
    norm = np.linalg.norm(u)
    if norm == 0:  # pragma: no cover - probability zero
        u = np.ones(d)
        norm = np.sqrt(d)
    u /= norm
    lam_prev = 0.0
    for _ in range(n_iter):
        hu = _matvec_x(X, _matvec_xt(X, u)) / m
        lam = float(np.dot(u, hu))
        norm = np.linalg.norm(hu)
        if norm == 0:
            return 0.0
        u = hu / norm
        if abs(lam - lam_prev) <= tol * max(1.0, abs(lam)):
            lam_prev = lam
            break
        lam_prev = lam
    return abs(lam_prev)


def gram_deviation(
    X: Matrix,
    m: int,
    mbar: int,
    *,
    trials: int = 3,
    power_iters: int = 30,
    rng: RandomState = 0,
) -> float:
    """Estimate ``max ‖(1/m̄) X_S X_Sᵀ − (1/m) X Xᵀ‖₂`` over random S.

    The loss-independent core of the stochastic step-size rule; general
    losses scale it by their ``curvature_bound`` (ℓ'' ≤ bound pointwise,
    so the weighted deviation is bounded by the unweighted one times it).
    """
    if not (0 < mbar <= m):
        raise ValidationError(f"mbar must lie in (0, {m}], got {mbar}")
    d = X.shape[0]
    gen = as_generator(rng)
    worst = 0.0
    for _ in range(trials):
        idx = gen.integers(0, m, size=mbar, dtype=np.int64)
        if isinstance(X, np.ndarray):
            A = X[:, idx]
        else:
            csc = X.to_csc() if isinstance(X, CSRMatrix) else X
            A = csc.select_columns(idx).to_dense()
        u = gen.standard_normal(d)
        u /= np.linalg.norm(u)
        lam = 0.0
        for _it in range(power_iters):
            du = A @ (A.T @ u) / mbar - _matvec_x(X, _matvec_xt(X, u)) / m
            norm = np.linalg.norm(du)
            if norm == 0:
                lam = 0.0
                break
            lam = norm
            u = du / norm
        worst = max(worst, lam)
    return worst


# --------------------------------------------------------------------- #
# the generic ERM objective
# --------------------------------------------------------------------- #
class ERMObjective:
    """General composite objective ``F(w) = (1/m) Σ ℓ(x_iᵀw, y_i) + g(w)``.

    ``X`` is features × samples (paper layout, one column per sample).
    :class:`~repro.core.objectives.L1LeastSquares` and
    :class:`~repro.core.logistic.L1Logistic` subclass this with their
    historical specialized numerics; direct instances cover every other
    (loss, penalty) combination with generic implementations. All solvers
    consume the same surface: ``value``/``smooth_value``/``reg_value``/
    ``gradient``/``hessian_at``/``lipschitz``/``default_step`` plus the
    step-size statistics ``max_sample_lipschitz`` and
    ``sampled_hessian_deviation``.
    """

    loss: SmoothLoss
    penalty: Regularizer

    def __init__(
        self,
        X: Matrix,
        y: np.ndarray,
        *,
        loss: str | SmoothLoss = "squared",
        penalty: str | Regularizer | ProximalOperator = "l1",
        lam: float | None = None,
    ) -> None:
        d, m = X.shape
        if m == 0 or d == 0:
            raise ValidationError(f"X must be non-empty, got shape {(d, m)}")
        y = check_vector(y, "y")
        if y.shape != (m,):
            raise ShapeError(f"y must have shape ({m},), got {y.shape}")
        loss = make_loss(loss)
        loss.validate_labels(y)
        if lam is None and isinstance(penalty, Regularizer):
            lam = penalty.lam
        if lam is None:
            raise ValidationError("ERMObjective needs lam= (the penalty strength)")
        self.X = X
        self.y = y
        self.d = d
        self.m = m
        self.lam = check_positive(lam, "lambda", strict=False)
        self.loss = loss
        self.penalty = make_penalty(penalty, lam=self.lam, d=d)
        self._gram_lipschitz_cache: float | None = None
        self._gram_deviation_cache: dict[int, float] = {}

    def _adopt_model(self, loss: SmoothLoss, penalty: Regularizer) -> None:
        """Attach (loss, penalty) identity — used by specialized subclasses
        (``L1LeastSquares``, ``L1Logistic``) whose own ``__init__`` performs
        the historical validation and therefore skips the base one."""
        self.loss = loss
        self.penalty = penalty
        self._gram_lipschitz_cache = None
        self._gram_deviation_cache = {}

    # -- values and derivatives ------------------------------------------ #
    def predictions(self, w: np.ndarray) -> np.ndarray:
        """Per-sample predictions ``z = Xᵀw``."""
        return _matvec_xt(self.X, np.asarray(w, dtype=np.float64))

    def smooth_value(self, w: np.ndarray) -> float:
        z = self.predictions(w)
        return float(np.sum(self.loss.values(z, self.y))) / self.m

    def reg_value(self, w: np.ndarray) -> float:
        return self.penalty.value(np.asarray(w, dtype=np.float64))

    def value(self, w: np.ndarray) -> float:
        return self.smooth_value(w) + self.reg_value(w)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        z = self.predictions(w)
        return _matvec_x(self.X, self.loss.grad(z, self.y)) / self.m

    def hessian_at(self, w: np.ndarray) -> np.ndarray:
        """``∇²f(w) = (1/m) X diag(ℓ''(z, y)) Xᵀ`` (dense, symmetrized)."""
        z = self.predictions(w)
        weights = self.loss.curvature(z, self.y)
        dense = self.X if isinstance(self.X, np.ndarray) else self.X.to_dense()
        H = (dense * weights[None, :]) @ dense.T / self.m
        return 0.5 * (H + H.T)

    @property
    def constant_curvature(self) -> bool:
        """True when ``∇²f`` does not depend on ``w`` (squared loss)."""
        return self.loss.constant_curvature

    @cached_property
    def hessian(self) -> np.ndarray:
        """The constant dense Hessian — constant-curvature losses only."""
        if not self.constant_curvature:
            raise ValidationError(
                f"the {self.loss.name} loss has w-dependent curvature; "
                "use hessian_at(w)"
            )
        return self.hessian_at(np.zeros(self.d))

    # -- curvature constants ---------------------------------------------- #
    def gram_lipschitz(self, **kwargs: Any) -> float:
        """Memoized ``λmax((1/m) X Xᵀ)`` (default arguments only)."""
        if not kwargs and self._gram_lipschitz_cache is not None:
            return self._gram_lipschitz_cache
        result = gram_lipschitz(self.X, self.m, **kwargs)
        if not kwargs:
            self._gram_lipschitz_cache = result
        return result

    def lipschitz(self, **kwargs: Any) -> float:
        """Gradient Lipschitz bound: ``curvature_bound · λmax((1/m)XXᵀ)``."""
        return self.loss.curvature_bound * self.gram_lipschitz(**kwargs)

    @property
    def max_sample_lipschitz(self) -> float:
        """``curvature_bound · max_i ‖x_i‖²`` — worst sampled-Hessian norm."""
        if isinstance(self.X, np.ndarray):
            norms = np.einsum("ij,ij->j", self.X, self.X)
        else:
            csc = self.X.to_csc() if isinstance(self.X, CSRMatrix) else self.X
            norms = csc.col_norms_sq()
        peak = float(norms.max()) if norms.size else 0.0
        return self.loss.curvature_bound * peak

    def sampled_hessian_deviation(self, mbar: int, **kwargs: Any) -> float:
        """``curvature_bound``-scaled Gram deviation (memoized per ``m̄``)."""
        if not kwargs:
            cached = self._gram_deviation_cache.get(mbar)
            if cached is not None:
                return cached
        result = self.loss.curvature_bound * gram_deviation(
            self.X, self.m, mbar, **kwargs
        )
        if not kwargs:
            self._gram_deviation_cache[mbar] = result
        return result

    def default_step(self, **kwargs: Any) -> float:
        L = self.lipschitz(**kwargs)
        if L <= 0:
            raise ValidationError("cannot derive a step size: the data matrix is zero")
        return 1.0 / L

    # -- optimality and reporting ----------------------------------------- #
    def optimality_residual(self, w: np.ndarray) -> float:
        """∞-norm of the prox-gradient mapping ``(w − prox_γ(w − γ∇f))/γ``.

        Zero iff ``w`` minimizes ``F``; valid for every penalty (the
        l1 subclasses override this with the sharper subgradient form).
        """
        w = np.asarray(w, dtype=np.float64)
        gamma = self.default_step()
        step = self.penalty.prox(w - gamma * self.gradient(w), gamma)
        res = np.abs(w - step) / gamma
        return float(np.max(res)) if res.size else 0.0

    def accuracy(self, w: np.ndarray) -> float:
        """Training classification accuracy of ``sign(Xᵀw)`` (±1 labels)."""
        preds = np.sign(self.predictions(w))
        preds[preds == 0] = 1.0
        return float(np.mean(preds == self.y))

    def quadratic_model(self, w: np.ndarray):
        """The PN subproblem smooth part (Eq. 19) linearized around ``w``."""
        from repro.core.objectives import QuadraticModel

        w = np.asarray(w, dtype=np.float64)
        return QuadraticModel.from_linearization(self.hessian_at(w), self.gradient(w), w)


# --------------------------------------------------------------------- #
# the runtime bridge
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResolvedObjective:
    """What a runtime solver actually optimizes after config overrides.

    ``objective`` is the problem to evaluate/monitor (the original when no
    override applies, else a fresh :class:`ERMObjective` view over the
    same ``X``/``y``); ``legacy`` is True exactly for squared loss + plain
    l1 at the problem's own λ — the combination whose historical solver
    code path is preserved verbatim (byte-identical traces and costs).
    """

    objective: Any
    loss: SmoothLoss
    penalty: Regularizer
    legacy: bool


def resolve_objective(
    problem: Any,
    *,
    loss: str | SmoothLoss | None = None,
    penalty: str | Regularizer | ProximalOperator | None = None,
) -> ResolvedObjective:
    """Merge a problem's own (loss, penalty) with config overrides.

    No override and a squared+l1 problem → the legacy path. Overrides (or
    a problem that is already a general :class:`ERMObjective`) → the
    generalized model-anchored path with the resolved pair.
    """
    base_loss: SmoothLoss = getattr(problem, "loss", None) or SquaredLoss()
    base_penalty: Regularizer | None = getattr(problem, "penalty", None)
    if base_penalty is None:
        base_penalty = make_penalty("l1", lam=problem.lam, d=problem.d)
    resolved_loss = make_loss(loss) if loss is not None else base_loss
    resolved_penalty = (
        make_penalty(penalty, lam=problem.lam, d=problem.d)
        if penalty is not None
        else base_penalty
    )
    legacy = resolved_loss.name == "squared" and resolved_penalty.is_plain_l1(
        problem.lam
    )
    same_as_problem = (
        resolved_loss is base_loss and resolved_penalty is base_penalty
    )
    if legacy or same_as_problem:
        objective = problem
    else:
        objective = ERMObjective(
            problem.X,
            problem.y,
            loss=resolved_loss,
            penalty=resolved_penalty,
            lam=problem.lam,
        )
    return ResolvedObjective(
        objective=objective,
        loss=resolved_loss,
        penalty=resolved_penalty,
        legacy=legacy,
    )
