"""Compressed sparse row / column formats with vectorized kernels.

``CSRMatrix`` is the workhorse storage for the data matrix ``X`` (features ×
samples, matching the paper's layout). ``CSCMatrix`` is the column-major
twin used for fast *sample* (column) selection when building the sampled
Hessian ``H_n = (1/m̄) X I_n I_nᵀ Xᵀ``.

All kernels are pure functions of their inputs — flop accounting lives in
:mod:`repro.sparse.ops` so the numerics stay reusable outside the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.sparse.coo import COOMatrix

__all__ = ["CSRMatrix", "CSCMatrix"]


def _validate_compressed(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n_major: int, n_minor: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    data = np.ascontiguousarray(data, dtype=np.float64)
    if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
        raise ShapeError("indptr, indices and data must be one-dimensional")
    if indptr.size != n_major + 1:
        raise ShapeError(f"indptr must have length {n_major + 1}, got {indptr.size}")
    if indices.size != data.size:
        raise ShapeError("indices and data must have equal length")
    if indptr[0] != 0 or indptr[-1] != indices.size:
        raise ValidationError("indptr must start at 0 and end at nnz")
    if np.any(np.diff(indptr) < 0):
        raise ValidationError("indptr must be non-decreasing")
    if indices.size and (indices.min() < 0 or indices.max() >= n_minor):
        raise ValidationError(f"minor indices out of range [0, {n_minor})")
    return indptr, indices, data


def _row_ids(indptr: np.ndarray) -> np.ndarray:
    """Expand an indptr to a per-entry major-index array."""
    return np.repeat(np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr))


def _gather_segments(indptr: np.ndarray, picks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (entry positions, new indptr) selecting major slices *picks*.

    Fully vectorized segment gather: supports duplicate picks (sampling with
    replacement) and preserves pick order.
    """
    starts = indptr[picks]
    lengths = indptr[picks + 1] - starts
    new_indptr = np.zeros(picks.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    total = int(new_indptr[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), new_indptr
    # positions = concat(arange(starts[i], starts[i]+lengths[i]))
    offsets = np.repeat(starts - new_indptr[:-1], lengths)
    positions = np.arange(total, dtype=np.int64) + offsets
    return positions, new_indptr


@dataclass(frozen=True)
class CSRMatrix:
    """Immutable CSR matrix of shape ``(n, m)``.

    ``indptr`` has length ``n+1``; row ``i`` owns entries
    ``indptr[i]:indptr[i+1]`` of ``indices`` (column ids) and ``data``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        n, m = self.shape
        indptr, indices, data = _validate_compressed(self.indptr, self.indices, self.data, n, m)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", (int(n), int(m)))
        # Memoized column-major twin: the matrix is immutable, so the
        # first to_csc() result can be cached for the instance's lifetime.
        object.__setattr__(self, "_csc_cache", None)

    # ------------------------------------------------------------------ #
    # constructors / conversions
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_dense(dense: np.ndarray) -> "CSRMatrix":
        """Compress the non-zeros of a dense array."""
        return COOMatrix.from_dense(dense).to_csr()

    @staticmethod
    def eye(n: int) -> "CSRMatrix":
        """Identity matrix of order *n*."""
        return CSRMatrix(
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n),
            (n, n),
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            out[_row_ids(self.indptr), self.indices] = self.data
        return out

    def to_coo(self) -> COOMatrix:
        return COOMatrix(_row_ids(self.indptr), self.indices, self.data, self.shape)

    def to_csc(self) -> "CSCMatrix":
        """Convert to column-major storage (counting sort on columns).

        The result is memoized on the instance — repeated calls (e.g.
        ``sampled_gram`` in a solver inner loop) pay the counting sort
        once. Safe because both formats are immutable.
        """
        cached = self._csc_cache
        if cached is None:
            cached = self.to_coo().to_csc()
            object.__setattr__(self, "_csc_cache", cached)
        return cached

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a CSR matrix."""
        csc = self.to_csc()
        return CSRMatrix(csc.indptr, csc.indices, csc.data, (self.shape[1], self.shape[0]))

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        n, m = self.shape
        total = n * m
        return self.nnz / total if total else 0.0

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        n, m = self.shape
        if x.shape != (m,):
            raise ShapeError(f"matvec expects x of shape ({m},), got {x.shape}")
        out = np.zeros(n, dtype=np.float64)
        if self.nnz:
            contrib = self.data * x[self.indices]
            nonempty = np.flatnonzero(np.diff(self.indptr))
            out[nonempty] = np.add.reduceat(contrib, self.indptr[nonempty])
        return out

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """Transposed product ``Aᵀ @ v``."""
        v = np.asarray(v, dtype=np.float64)
        n, m = self.shape
        if v.shape != (n,):
            raise ShapeError(f"rmatvec expects v of shape ({n},), got {v.shape}")
        out = np.zeros(m, dtype=np.float64)
        if self.nnz:
            np.add.at(out, self.indices, self.data * v[_row_ids(self.indptr)])
        return out

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """Sparse-dense product ``A @ B`` for dense ``B`` of shape ``(m, p)``."""
        B = np.asarray(B, dtype=np.float64)
        n, m = self.shape
        if B.ndim != 2 or B.shape[0] != m:
            raise ShapeError(f"matmat expects B with {m} rows, got shape {B.shape}")
        out = np.zeros((n, B.shape[1]), dtype=np.float64)
        if self.nnz:
            contrib = self.data[:, None] * B[self.indices]
            nonempty = np.flatnonzero(np.diff(self.indptr))
            out[nonempty] = np.add.reduceat(contrib, self.indptr[nonempty], axis=0)
        return out

    def select_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Return ``A[rows, :]`` (duplicates allowed, order preserved)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ShapeError("row selection must be one-dimensional")
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ValidationError("row selection out of range")
        positions, new_indptr = _gather_segments(self.indptr, rows)
        return CSRMatrix(
            new_indptr, self.indices[positions], self.data[positions], (rows.size, self.shape[1])
        )

    def gather_rows_dense(self, rows: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Densify ``A[rows, :]`` directly, skipping the CSR intermediate.

        Bit-identical to ``select_rows(rows).to_dense()`` (same scatter
        order, so duplicate rows resolve identically) without building the
        intermediate compressed matrix. ``out``, when given, must be a
        ``(len(rows), m)`` float64 array and is overwritten in place.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ShapeError("row selection must be one-dimensional")
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ValidationError("row selection out of range")
        shape = (rows.size, self.shape[1])
        if out is None:
            out = np.zeros(shape, dtype=np.float64)
        else:
            if out.shape != shape or out.dtype != np.float64:
                raise ShapeError(f"out must be float64 of shape {shape}")
            out.fill(0.0)
        positions, new_indptr = _gather_segments(self.indptr, rows)
        if positions.size:
            out[_row_ids(new_indptr), self.indices[positions]] = self.data[positions]
        return out

    def row_norms_sq(self) -> np.ndarray:
        """Squared euclidean norm of every row."""
        out = np.zeros(self.shape[0], dtype=np.float64)
        if self.nnz:
            sq = self.data * self.data
            nonempty = np.flatnonzero(np.diff(self.indptr))
            out[nonempty] = np.add.reduceat(sq, self.indptr[nonempty])
        return out

    def scale(self, alpha: float) -> "CSRMatrix":
        """Return ``alpha * A``."""
        return CSRMatrix(self.indptr, self.indices, self.data * float(alpha), self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


@dataclass(frozen=True)
class CSCMatrix:
    """Immutable CSC matrix of shape ``(n, m)``.

    ``indptr`` has length ``m+1``; column ``j`` owns entries
    ``indptr[j]:indptr[j+1]`` of ``indices`` (row ids) and ``data``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        n, m = self.shape
        indptr, indices, data = _validate_compressed(self.indptr, self.indices, self.data, m, n)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", (int(n), int(m)))

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CSCMatrix":
        return COOMatrix.from_dense(dense).to_csc()

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        n, m = self.shape
        total = n * m
        return self.nnz / total if total else 0.0

    def col_nnz(self) -> np.ndarray:
        """Stored entries per column."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            out[self.indices, _row_ids(self.indptr)] = self.data
        return out

    def to_coo(self) -> COOMatrix:
        return COOMatrix(self.indices, _row_ids(self.indptr), self.data, self.shape)

    def to_csr(self) -> CSRMatrix:
        return self.to_coo().to_csr()

    def select_columns(self, cols: np.ndarray) -> "CSCMatrix":
        """Return ``A[:, cols]`` — the paper's ``X I_n`` sampling operator.

        Duplicate columns are allowed (sampling with replacement) and the
        requested order is preserved.
        """
        cols = np.asarray(cols, dtype=np.int64)
        if cols.ndim != 1:
            raise ShapeError("column selection must be one-dimensional")
        if cols.size and (cols.min() < 0 or cols.max() >= self.shape[1]):
            raise ValidationError("column selection out of range")
        positions, new_indptr = _gather_segments(self.indptr, cols)
        return CSCMatrix(
            new_indptr, self.indices[positions], self.data[positions], (self.shape[0], cols.size)
        )

    def gather_columns_dense(self, cols: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Densify ``A[:, cols]`` directly, skipping the CSC intermediate.

        Bit-identical to ``select_columns(cols).to_dense()`` (same scatter
        order, so duplicate columns resolve identically) without building
        the intermediate compressed matrix. ``out``, when given, must be a
        ``(n, len(cols))`` float64 array and is overwritten in place —
        pair with :class:`~repro.sparse.ops.GramWorkspace` to make the
        inner-loop column densification allocation-free.
        """
        cols = np.asarray(cols, dtype=np.int64)
        if cols.ndim != 1:
            raise ShapeError("column selection must be one-dimensional")
        if cols.size and (cols.min() < 0 or cols.max() >= self.shape[1]):
            raise ValidationError("column selection out of range")
        shape = (self.shape[0], cols.size)
        if out is None:
            out = np.zeros(shape, dtype=np.float64)
        else:
            if out.shape != shape or out.dtype != np.float64:
                raise ShapeError(f"out must be float64 of shape {shape}")
            out.fill(0.0)
        positions, new_indptr = _gather_segments(self.indptr, cols)
        if positions.size:
            out[self.indices[positions], _row_ids(new_indptr)] = self.data[positions]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via scatter-add over columns."""
        x = np.asarray(x, dtype=np.float64)
        n, m = self.shape
        if x.shape != (m,):
            raise ShapeError(f"matvec expects x of shape ({m},), got {x.shape}")
        out = np.zeros(n, dtype=np.float64)
        if self.nnz:
            np.add.at(out, self.indices, self.data * x[_row_ids(self.indptr)])
        return out

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """``Aᵀ @ v`` via per-column reduction."""
        v = np.asarray(v, dtype=np.float64)
        n, m = self.shape
        if v.shape != (n,):
            raise ShapeError(f"rmatvec expects v of shape ({n},), got {v.shape}")
        out = np.zeros(m, dtype=np.float64)
        if self.nnz:
            contrib = self.data * v[self.indices]
            nonempty = np.flatnonzero(np.diff(self.indptr))
            out[nonempty] = np.add.reduceat(contrib, self.indptr[nonempty])
        return out

    def col_norms_sq(self) -> np.ndarray:
        """Squared euclidean norm of every column."""
        out = np.zeros(self.shape[1], dtype=np.float64)
        if self.nnz:
            sq = self.data * self.data
            nonempty = np.flatnonzero(np.diff(self.indptr))
            out[nonempty] = np.add.reduceat(sq, self.indptr[nonempty])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
