"""Sampled Gram-matrix kernels and flop accounting.

These implement the two quantities RC-SFISTA builds every inner iteration
(Eq. 18 of the paper):

.. math::

    H_n = \\frac{1}{\\bar m} X I_n I_n^T X^T, \\qquad
    R_n = \\frac{1}{\\bar m} X I_n I_n^T y

where ``X`` is the (d × m) data matrix, ``I_n`` selects ``m̄`` sampled
columns, and ``y`` holds the labels. The flop helpers return the *sparse*
operation counts the paper's model charges (Table 1), computed from matrix
metadata so the cost model and the numerics cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.sparse.csr import CSCMatrix, CSRMatrix

__all__ = [
    "sampled_gram",
    "sampled_rhs",
    "gram_flops",
    "rhs_flops",
    "spmv_flops",
    "gemv_flops",
    "dense_gram_flops",
]

Matrix = np.ndarray | CSRMatrix | CSCMatrix


def _select_columns_dense(X: Matrix, cols: np.ndarray) -> np.ndarray:
    """Materialize ``X[:, cols]`` densely for Gram formation."""
    if isinstance(X, np.ndarray):
        if X.ndim != 2:
            raise ShapeError(f"X must be 2-D, got shape {X.shape}")
        return X[:, cols]
    if isinstance(X, CSRMatrix):
        X = X.to_csc()
    return X.select_columns(np.asarray(cols, dtype=np.int64)).to_dense()


def sampled_gram(X: Matrix, cols: np.ndarray, *, scale: float | None = None) -> np.ndarray:
    """Dense sampled Gram matrix ``(1/m̄) X_S X_Sᵀ`` with ``S = cols``.

    Parameters
    ----------
    X:
        Data matrix of shape ``(d, m)`` — dense, CSR or CSC.
    cols:
        Sampled column (sample) indices, duplicates allowed.
    scale:
        Override for the ``1/m̄`` normalization (``None`` → ``1/len(cols)``).

    Returns
    -------
    ``(d, d)`` dense symmetric positive semi-definite array.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if cols.size == 0:
        raise ShapeError("sampled_gram requires at least one sampled column")
    A = _select_columns_dense(X, cols)
    s = (1.0 / cols.size) if scale is None else float(scale)
    H = A @ A.T
    H *= s
    # Enforce exact symmetry: A @ A.T is symmetric in exact arithmetic but
    # BLAS may leave last-ulp asymmetry that breaks downstream invariants.
    return 0.5 * (H + H.T)


def sampled_rhs(
    X: Matrix, y: np.ndarray, cols: np.ndarray, *, scale: float | None = None
) -> np.ndarray:
    """Sampled right-hand side ``(1/m̄) X_S y_S``."""
    cols = np.asarray(cols, dtype=np.int64)
    if cols.size == 0:
        raise ShapeError("sampled_rhs requires at least one sampled column")
    y = np.asarray(y, dtype=np.float64)
    A = _select_columns_dense(X, cols)
    if y.ndim != 1 or A.shape[1] != cols.size:
        raise ShapeError("y must be 1-D and consistent with X")
    s = (1.0 / cols.size) if scale is None else float(scale)
    return s * (A @ y[cols])


# ---------------------------------------------------------------------- #
# flop accounting (sparse-aware, used to charge the α-β-γ model)
# ---------------------------------------------------------------------- #
def _nnz_of_columns(X: Matrix, cols: np.ndarray) -> int:
    """Stored entries of ``X[:, cols]`` without materializing it."""
    cols = np.asarray(cols, dtype=np.int64)
    if isinstance(X, np.ndarray):
        d = X.shape[0]
        return int(d * cols.size)
    if isinstance(X, CSRMatrix):
        # Without a CSC view, estimate via average column fill; exact value
        # needs a column histogram which callers that care precompute.
        avg = X.nnz / X.shape[1] if X.shape[1] else 0.0
        return int(round(avg * cols.size))
    per_col = X.col_nnz()
    return int(per_col[cols].sum())


def gram_flops(X: Matrix, cols: np.ndarray, d: int | None = None) -> int:
    """Flops to form ``X_S X_Sᵀ`` sparsely: ``Σ_s nnz(x_s)²`` multiply-adds.

    The paper's Table 1 models this as ``O(d² m̄ f)``; with uniformly
    distributed non-zeros ``nnz(x_s) ≈ d·f`` and the two agree. We charge
    2 flops per multiply-add.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if isinstance(X, np.ndarray):
        dd = X.shape[0]
        return int(2 * dd * dd * cols.size)
    if isinstance(X, CSCMatrix):
        per_col = X.col_nnz()[cols].astype(np.int64)
        return int(2 * np.sum(per_col * per_col))
    # CSR fallback: average fill model.
    dd = d if d is not None else X.shape[0]
    f = X.density
    return int(round(2 * dd * dd * f * f * cols.size)) if f else 0


def rhs_flops(X: Matrix, cols: np.ndarray) -> int:
    """Flops to form ``X_S y_S`` (2 per stored entry of the sampled block)."""
    return 2 * _nnz_of_columns(X, cols)


def spmv_flops(nnz: int) -> int:
    """Flops for a sparse matrix-vector product with *nnz* stored entries."""
    return 2 * int(nnz)


def gemv_flops(n: int, m: int) -> int:
    """Flops for a dense ``(n × m)`` matrix-vector product."""
    return 2 * int(n) * int(m)


def dense_gram_flops(d: int, mbar: int) -> int:
    """Flops for dense formation of a ``d×d`` Gram from ``d×m̄`` data."""
    return 2 * int(d) * int(d) * int(mbar)
