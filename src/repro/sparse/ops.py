"""Sampled Gram-matrix kernels and flop accounting.

These implement the two quantities RC-SFISTA builds every inner iteration
(Eq. 18 of the paper):

.. math::

    H_n = \\frac{1}{\\bar m} X I_n I_n^T X^T, \\qquad
    R_n = \\frac{1}{\\bar m} X I_n I_n^T y

where ``X`` is the (d × m) data matrix, ``I_n`` selects ``m̄`` sampled
columns, and ``y`` holds the labels. The flop helpers return the *sparse*
operation counts the paper's model charges (Table 1), computed from matrix
metadata so the cost model and the numerics cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.sparse.csr import CSCMatrix, CSRMatrix

__all__ = [
    "GramWorkspace",
    "sampled_gram",
    "sampled_rhs",
    "gram_flops",
    "rhs_flops",
    "spmv_flops",
    "gemv_flops",
    "dense_gram_flops",
]

Matrix = np.ndarray | CSRMatrix | CSCMatrix


class GramWorkspace:
    """Reusable scratch buffers for :func:`sampled_gram`/:func:`sampled_rhs`.

    Solvers build the sampled Gram matrix every inner iteration with the
    same ``d`` and (typically) the same sample count ``m̄``, so the dense
    column block and the pre-symmetrization Gram scratch can be allocated
    once and reused. Construct one per solver run and pass it to the
    kernels; results are bit-identical to the allocating path.

    ``reuses`` counts borrows served without growing the pool — it feeds
    the ``gram_workspace_reuses`` runtime counter (see docs/PERFORMANCE.md).
    """

    def __init__(self, d: int, max_cols: int = 0) -> None:
        d = int(d)
        if d < 1:
            raise ShapeError(f"GramWorkspace needs d >= 1, got {d}")
        self._pool = np.empty(d * int(max_cols), dtype=np.float64)
        self._scratch = np.empty((d, d), dtype=np.float64)
        self.reuses = 0

    def dense_block(self, rows: int, ncols: int, order: str = "C") -> np.ndarray:
        """Borrow a contiguous ``(rows, ncols)`` float64 block.

        The block is a reshaped view of a flat pool (grown on demand), so
        its memory layout matches a freshly allocated array of the given
        ``order`` — this matters for bit-identical BLAS results: dense
        fancy indexing ``X[:, cols]`` yields an F-ordered array, sparse
        ``to_dense()`` a C-ordered one, and dgemm summation order follows
        the layout.
        """
        rows, ncols = int(rows), int(ncols)
        need = rows * ncols
        if need > self._pool.size:
            self._pool = np.empty(need, dtype=np.float64)
        else:
            self.reuses += 1
        flat = self._pool[:need]
        if order == "F":
            return flat.reshape(ncols, rows).T
        return flat.reshape(rows, ncols)

    def gram_scratch(self, d: int) -> np.ndarray:
        """Borrow the ``(d, d)`` pre-symmetrization scratch."""
        if self._scratch.shape != (d, d):
            self._scratch = np.empty((d, d), dtype=np.float64)
        else:
            self.reuses += 1
        return self._scratch


def _select_columns_dense(
    X: Matrix, cols: np.ndarray, workspace: GramWorkspace | None = None
) -> np.ndarray:
    """Materialize ``X[:, cols]`` densely for Gram formation."""
    if isinstance(X, np.ndarray):
        if X.ndim != 2:
            raise ShapeError(f"X must be 2-D, got shape {X.shape}")
        if workspace is not None:
            # F-ordered to match the layout (hence BLAS summation order)
            # of the fancy-indexing path below.
            block = workspace.dense_block(X.shape[0], len(cols), order="F")
            np.take(X, cols, axis=1, out=block)
            return block
        return X[:, cols]
    if isinstance(X, CSRMatrix):
        X = X.to_csc()  # memoized on the CSR instance
    cols = np.asarray(cols, dtype=np.int64)
    if workspace is not None:
        return X.gather_columns_dense(cols, out=workspace.dense_block(X.shape[0], cols.size))
    return X.select_columns(cols).to_dense()


def sampled_gram(
    X: Matrix,
    cols: np.ndarray,
    *,
    scale: float | None = None,
    workspace: GramWorkspace | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Dense sampled Gram matrix ``(1/m̄) X_S X_Sᵀ`` with ``S = cols``.

    Parameters
    ----------
    X:
        Data matrix of shape ``(d, m)`` — dense, CSR or CSC.
    cols:
        Sampled column (sample) indices, duplicates allowed.
    scale:
        Override for the ``1/m̄`` normalization (``None`` → ``1/len(cols)``).
    workspace:
        Optional :class:`GramWorkspace`; when given, the dense column
        block and the pre-symmetrization scratch are borrowed instead of
        allocated. Results are bit-identical to the allocating path.
    out:
        Optional ``(d, d)`` float64 output buffer, written in place.

    Returns
    -------
    ``(d, d)`` dense symmetric positive semi-definite array.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if cols.size == 0:
        raise ShapeError("sampled_gram requires at least one sampled column")
    A = _select_columns_dense(X, cols, workspace)
    s = (1.0 / cols.size) if scale is None else float(scale)
    if workspace is None:
        H = A @ A.T
        H *= s
        # Enforce exact symmetry: A @ A.T is symmetric in exact arithmetic
        # but BLAS may leave last-ulp asymmetry that breaks downstream
        # invariants.
        H = 0.5 * (H + H.T)
        if out is None:
            return H
        np.copyto(out, H)
        return out
    d = A.shape[0]
    scratch = workspace.gram_scratch(d)
    np.matmul(A, A.T, out=scratch)
    scratch *= s
    if out is None:
        out = np.empty((d, d), dtype=np.float64)
    elif out.shape != (d, d) or out.dtype != np.float64:
        raise ShapeError(f"out must be float64 of shape {(d, d)}")
    np.add(scratch, scratch.T, out=out)
    out *= 0.5
    return out


def sampled_rhs(
    X: Matrix,
    y: np.ndarray,
    cols: np.ndarray,
    *,
    scale: float | None = None,
    workspace: GramWorkspace | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Sampled right-hand side ``(1/m̄) X_S y_S``.

    ``workspace``/``out`` mirror :func:`sampled_gram`: borrow the dense
    column block and write the result in place, bit-identically.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if cols.size == 0:
        raise ShapeError("sampled_rhs requires at least one sampled column")
    y = np.asarray(y, dtype=np.float64)
    A = _select_columns_dense(X, cols, workspace)
    if y.ndim != 1 or A.shape[1] != cols.size:
        raise ShapeError("y must be 1-D and consistent with X")
    s = (1.0 / cols.size) if scale is None else float(scale)
    if workspace is None and out is None:
        return s * (A @ y[cols])
    d = A.shape[0]
    if out is None:
        out = np.empty(d, dtype=np.float64)
    elif out.shape != (d,) or out.dtype != np.float64:
        raise ShapeError(f"out must be float64 of shape {(d,)}")
    np.matmul(A, y[cols], out=out)
    out *= s
    return out


# ---------------------------------------------------------------------- #
# flop accounting (sparse-aware, used to charge the α-β-γ model)
# ---------------------------------------------------------------------- #
def _nnz_of_columns(X: Matrix, cols: np.ndarray) -> int:
    """Stored entries of ``X[:, cols]`` without materializing it."""
    cols = np.asarray(cols, dtype=np.int64)
    if isinstance(X, np.ndarray):
        d = X.shape[0]
        return int(d * cols.size)
    if isinstance(X, CSRMatrix):
        # Without a CSC view, estimate via average column fill; exact value
        # needs a column histogram which callers that care precompute.
        avg = X.nnz / X.shape[1] if X.shape[1] else 0.0
        return int(round(avg * cols.size))
    per_col = X.col_nnz()
    return int(per_col[cols].sum())


def gram_flops(X: Matrix, cols: np.ndarray, d: int | None = None) -> int:
    """Flops to form ``X_S X_Sᵀ`` sparsely: ``Σ_s nnz(x_s)²`` multiply-adds.

    The paper's Table 1 models this as ``O(d² m̄ f)``; with uniformly
    distributed non-zeros ``nnz(x_s) ≈ d·f`` and the two agree. We charge
    2 flops per multiply-add.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if isinstance(X, np.ndarray):
        dd = X.shape[0]
        return int(2 * dd * dd * cols.size)
    if isinstance(X, CSCMatrix):
        per_col = X.col_nnz()[cols].astype(np.int64)
        return int(2 * np.sum(per_col * per_col))
    # CSR fallback: average fill model.
    dd = d if d is not None else X.shape[0]
    f = X.density
    return int(round(2 * dd * dd * f * f * cols.size)) if f else 0


def rhs_flops(X: Matrix, cols: np.ndarray) -> int:
    """Flops to form ``X_S y_S`` (2 per stored entry of the sampled block)."""
    return 2 * _nnz_of_columns(X, cols)


def spmv_flops(nnz: int) -> int:
    """Flops for a sparse matrix-vector product with *nnz* stored entries."""
    return 2 * int(nnz)


def gemv_flops(n: int, m: int) -> int:
    """Flops for a dense ``(n × m)`` matrix-vector product."""
    return 2 * int(n) * int(m)


def dense_gram_flops(d: int, mbar: int) -> int:
    """Flops for dense formation of a ``d×d`` Gram from ``d×m̄`` data."""
    return 2 * int(d) * int(d) * int(mbar)
