"""Coordinate (triplet) sparse format.

COO is the assembly format: easy to build incrementally, trivially
convertible to CSR/CSC by a counting sort. All conversions are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ShapeError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sparse.csr import CSRMatrix, CSCMatrix

__all__ = ["COOMatrix"]


@dataclass(frozen=True)
class COOMatrix:
    """Immutable sparse matrix in coordinate format.

    Attributes
    ----------
    rows, cols:
        ``int64`` index arrays of equal length ``nnz``.
    data:
        ``float64`` value array of length ``nnz``. Explicit zeros are kept
        (they count as stored entries) — call :meth:`eliminate_zeros` to drop
        them.
    shape:
        ``(n_rows, n_cols)``.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        data = np.ascontiguousarray(self.data, dtype=np.float64)
        if not (rows.ndim == cols.ndim == data.ndim == 1):
            raise ShapeError("rows, cols and data must be one-dimensional")
        if not (rows.size == cols.size == data.size):
            raise ShapeError(
                f"triplet arrays disagree in length: {rows.size}, {cols.size}, {data.size}"
            )
        n, m = self.shape
        if n < 0 or m < 0:
            raise ValidationError(f"shape must be non-negative, got {self.shape}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n:
                raise ValidationError(f"row indices out of range for shape {self.shape}")
            if cols.min() < 0 or cols.max() >= m:
                raise ValidationError(f"column indices out of range for shape {self.shape}")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", (int(n), int(m)))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_dense(dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix holding the non-zeros of *dense*."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"dense input must be 2-D, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return COOMatrix(rows, cols, dense[rows, cols], dense.shape)

    # ------------------------------------------------------------------ #
    # properties & simple transforms
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries (including explicit zeros)."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Fill fraction ``nnz / (n·m)`` — the paper's ``f``."""
        n, m = self.shape
        total = n * m
        return self.nnz / total if total else 0.0

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swap row/column indices — O(1) data reuse)."""
        return COOMatrix(self.cols, self.rows, self.data, (self.shape[1], self.shape[0]))

    def sum_duplicates(self) -> "COOMatrix":
        """Combine duplicate ``(row, col)`` entries by summation."""
        if self.nnz == 0:
            return self
        n, m = self.shape
        keys = self.rows * m + self.cols
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        data_sorted = self.data[order]
        boundaries = np.flatnonzero(np.diff(keys_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        summed = np.add.reduceat(data_sorted, starts)
        unique_keys = keys_sorted[starts]
        return COOMatrix(unique_keys // m, unique_keys % m, summed, self.shape)

    def eliminate_zeros(self) -> "COOMatrix":
        """Drop explicitly stored zero entries."""
        mask = self.data != 0.0
        return COOMatrix(self.rows[mask], self.cols[mask], self.data[mask], self.shape)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates are summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR via a stable counting sort on the row index."""
        from repro.sparse.csr import CSRMatrix

        n, _ = self.shape
        counts = np.bincount(self.rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(self.rows, kind="stable")
        return CSRMatrix(indptr, self.cols[order], self.data[order], self.shape)

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC (CSR of the transpose)."""
        from repro.sparse.csr import CSCMatrix

        csr_t = self.transpose().to_csr()
        return CSCMatrix(csr_t.indptr, csr_t.indices, csr_t.data, self.shape)

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
