"""From-scratch sparse matrix substrate.

The paper's MPI implementation stores the (features × samples) data matrix
``X`` in compressed sparse row format and relies on MKL sparse BLAS. This
package provides the equivalent substrate: COO / CSR / CSC formats built
directly on numpy with vectorized kernels (SpMV, SpMM, transpose-multiply,
sampled Gram matrices) and exact flop accounting for the α-β-γ performance
model.

scipy.sparse is intentionally *not* used here — it serves only as an
independent oracle in the test-suite.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix, CSCMatrix
from repro.sparse.ops import (
    GramWorkspace,
    sampled_gram,
    sampled_rhs,
    gram_flops,
    rhs_flops,
    spmv_flops,
)
from repro.sparse.partition import ColumnPartition, partition_columns
from repro.sparse.io import load_libsvm, save_libsvm
from repro.sparse.random import random_csr, random_coo

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "GramWorkspace",
    "sampled_gram",
    "sampled_rhs",
    "gram_flops",
    "rhs_flops",
    "spmv_flops",
    "ColumnPartition",
    "partition_columns",
    "load_libsvm",
    "save_libsvm",
    "random_csr",
    "random_coo",
]
