"""Random sparse matrix generation with controlled density.

Used by the synthetic dataset generators to reproduce the fill fractions
``f`` of the paper's Table 2 datasets.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, as_generator

__all__ = ["random_coo", "random_csr"]


def random_coo(
    n: int,
    m: int,
    density: float,
    *,
    rng: RandomState = None,
    values: str = "gaussian",
) -> COOMatrix:
    """Random sparse ``(n, m)`` matrix with expected fill *density*.

    Entry positions are sampled without replacement from the ``n·m`` grid so
    the realized nnz is exactly ``round(density·n·m)`` (clipped to ``[0,
    n·m]``). ``values`` selects the non-zero distribution: ``"gaussian"``
    (standard normal) or ``"uniform"`` (uniform on ``[-1, 1)``).
    """
    if n < 0 or m < 0:
        raise ValidationError(f"shape must be non-negative, got ({n}, {m})")
    if not (0.0 <= density <= 1.0):
        raise ValidationError(f"density must lie in [0, 1], got {density}")
    gen = as_generator(rng)
    total = n * m
    nnz = int(round(density * total))
    nnz = max(0, min(total, nnz))
    if nnz == 0 or total == 0:
        return COOMatrix(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0), (n, m)
        )
    flat = gen.choice(total, size=nnz, replace=False)
    rows, cols = np.divmod(flat.astype(np.int64), m)
    if values == "gaussian":
        data = gen.standard_normal(nnz)
    elif values == "uniform":
        data = gen.uniform(-1.0, 1.0, size=nnz)
    else:
        raise ValidationError(f"unknown values distribution {values!r}")
    # Avoid stored zeros so density == realized fill.
    data[data == 0.0] = 1.0
    return COOMatrix(rows, cols, data, (n, m))


def random_csr(
    n: int,
    m: int,
    density: float,
    *,
    rng: RandomState = None,
    values: str = "gaussian",
) -> CSRMatrix:
    """CSR variant of :func:`random_coo`."""
    return random_coo(n, m, density, rng=rng, values=values).to_csr()
