"""LIBSVM text format reader/writer (from scratch).

The paper's datasets (Table 2) come from the LIBSVM collection. Files are
lines of ``label idx:val idx:val ...`` with 1-based feature indices. The
reader returns the matrix in the *paper's orientation*: features × samples
(one column per line of the file).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.exceptions import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSCMatrix

__all__ = ["load_libsvm", "save_libsvm", "parse_libsvm_lines"]


def parse_libsvm_lines(
    lines: "list[str] | TextIO", *, n_features: int | None = None, zero_based: bool = False
) -> tuple[CSCMatrix, np.ndarray]:
    """Parse LIBSVM-format lines into ``(X, y)`` with ``X`` of shape (d, m).

    Parameters
    ----------
    lines:
        An iterable of text lines (or an open text file).
    n_features:
        Force the feature dimension ``d`` (rows). Defaults to the largest
        index seen.
    zero_based:
        Interpret feature indices as 0-based instead of the LIBSVM default
        of 1-based.
    """
    labels: list[float] = []
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    offset = 0 if zero_based else 1
    sample = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            labels.append(float(parts[0]))
        except ValueError as exc:
            raise FormatError(f"line {lineno}: bad label {parts[0]!r}") from exc
        if len(parts) > 1:
            try:
                pairs = [p.split(":", 1) for p in parts[1:]]
                idx = np.array([int(i) - offset for i, _ in pairs], dtype=np.int64)
                val = np.array([float(v) for _, v in pairs], dtype=np.float64)
            except (ValueError, IndexError) as exc:
                raise FormatError(f"line {lineno}: malformed feature pair") from exc
            if idx.size and idx.min() < 0:
                raise FormatError(f"line {lineno}: feature index below minimum")
            if np.any(np.diff(idx) <= 0):
                # LIBSVM requires ascending indices; tolerate but detect dups.
                if np.unique(idx).size != idx.size:
                    raise FormatError(f"line {lineno}: duplicate feature index")
            rows.append(idx)
            cols.append(np.full(idx.size, sample, dtype=np.int64))
            vals.append(val)
        sample += 1

    m = sample
    if rows:
        all_rows = np.concatenate(rows)
        all_cols = np.concatenate(cols)
        all_vals = np.concatenate(vals)
    else:
        all_rows = np.empty(0, dtype=np.int64)
        all_cols = np.empty(0, dtype=np.int64)
        all_vals = np.empty(0, dtype=np.float64)
    d = int(all_rows.max()) + 1 if all_rows.size else 0
    if n_features is not None:
        if all_rows.size and n_features <= int(all_rows.max()):
            raise FormatError(
                f"n_features={n_features} too small for max index {int(all_rows.max())}"
            )
        d = n_features
    coo = COOMatrix(all_rows, all_cols, all_vals, (d, m))
    return coo.to_csc(), np.asarray(labels, dtype=np.float64)


def load_libsvm(
    path: str | Path, *, n_features: int | None = None, zero_based: bool = False
) -> tuple[CSCMatrix, np.ndarray]:
    """Load a LIBSVM file from *path*; see :func:`parse_libsvm_lines`."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_libsvm_lines(fh, n_features=n_features, zero_based=zero_based)


def save_libsvm(
    path: str | Path, X: CSCMatrix | np.ndarray, y: np.ndarray, *, zero_based: bool = False
) -> None:
    """Write ``(X, y)`` (``X`` of shape (d, m), one column per sample)."""
    y = np.asarray(y, dtype=np.float64)
    if isinstance(X, np.ndarray):
        X = CSCMatrix.from_dense(X)
    d, m = X.shape
    if y.shape != (m,):
        raise FormatError(f"y must have one entry per sample ({m}), got shape {y.shape}")
    offset = 0 if zero_based else 1
    buf = io.StringIO()
    for j in range(m):
        lo, hi = X.indptr[j], X.indptr[j + 1]
        feats = " ".join(
            f"{int(i) + offset}:{v:.17g}" for i, v in zip(X.indices[lo:hi], X.data[lo:hi])
        )
        buf.write(f"{y[j]:.17g} {feats}".rstrip() + "\n")
    Path(path).write_text(buf.getvalue(), encoding="utf-8")
