"""1-D column partitioning of the data matrix across virtual processors.

The paper distributes ``X`` (features × samples) *column-wise* and the label
vector ``y`` *row-wise* over ``P`` processors (§4.1): each processor owns a
contiguous block of samples and the full feature dimension. This module
computes balanced partitions and per-rank views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PartitionError
from repro.sparse.csr import CSCMatrix, CSRMatrix

__all__ = ["ColumnPartition", "partition_columns"]


@dataclass(frozen=True)
class ColumnPartition:
    """A contiguous block partition of ``m`` columns over ``P`` ranks.

    ``offsets`` has length ``P+1`` with ``offsets[p]:offsets[p+1]`` the
    global column range owned by rank ``p``.
    """

    m: int
    nranks: int
    offsets: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        if offsets.size != self.nranks + 1:
            raise PartitionError(
                f"offsets must have length {self.nranks + 1}, got {offsets.size}"
            )
        if offsets[0] != 0 or offsets[-1] != self.m or np.any(np.diff(offsets) < 0):
            raise PartitionError("offsets must be a non-decreasing 0..m ramp")
        object.__setattr__(self, "offsets", offsets)

    # ------------------------------------------------------------------ #
    def owner_of(self, col: int) -> int:
        """Rank owning global column *col*."""
        if not (0 <= col < self.m):
            raise PartitionError(f"column {col} out of range [0, {self.m})")
        return int(np.searchsorted(self.offsets, col, side="right") - 1)

    def local_slice(self, rank: int) -> slice:
        """Global column range owned by *rank* as a slice."""
        self._check_rank(rank)
        return slice(int(self.offsets[rank]), int(self.offsets[rank + 1]))

    def local_size(self, rank: int) -> int:
        """Number of columns owned by *rank*."""
        self._check_rank(rank)
        return int(self.offsets[rank + 1] - self.offsets[rank])

    def sizes(self) -> np.ndarray:
        """Columns per rank."""
        return np.diff(self.offsets)

    def to_local(self, rank: int, global_cols: np.ndarray) -> np.ndarray:
        """Translate *global_cols* owned by *rank* into local indices."""
        global_cols = np.asarray(global_cols, dtype=np.int64)
        lo, hi = self.offsets[rank], self.offsets[rank + 1]
        if global_cols.size and (global_cols.min() < lo or global_cols.max() >= hi):
            raise PartitionError(f"columns not owned by rank {rank}")
        return global_cols - lo

    def restrict(self, rank: int, global_cols: np.ndarray) -> np.ndarray:
        """Filter *global_cols* to those owned by *rank*, returned as local ids.

        This is how each processor realizes its share of the globally-agreed
        sample set ``I_n``: every rank draws the same global indices from a
        shared seed, keeps its own, and the union over ranks is exactly
        ``I_n``.
        """
        global_cols = np.asarray(global_cols, dtype=np.int64)
        lo, hi = self.offsets[rank], self.offsets[rank + 1]
        mine = global_cols[(global_cols >= lo) & (global_cols < hi)]
        return mine - lo

    def imbalance(self) -> float:
        """Load imbalance ``max/mean`` of per-rank column counts (1.0 = perfect)."""
        sizes = self.sizes()
        mean = sizes.mean() if sizes.size else 0.0
        return float(sizes.max() / mean) if mean > 0 else 1.0

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise PartitionError(f"rank {rank} out of range [0, {self.nranks})")


def partition_columns(m: int, nranks: int) -> ColumnPartition:
    """Balanced contiguous partition of *m* columns over *nranks* ranks.

    The first ``m % nranks`` ranks receive one extra column. Ranks may own
    zero columns when ``nranks > m`` — the solvers handle empty blocks.
    """
    if nranks <= 0:
        raise PartitionError(f"nranks must be positive, got {nranks}")
    if m < 0:
        raise PartitionError(f"m must be non-negative, got {m}")
    base, extra = divmod(m, nranks)
    sizes = np.full(nranks, base, dtype=np.int64)
    sizes[:extra] += 1
    offsets = np.zeros(nranks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return ColumnPartition(m=m, nranks=nranks, offsets=offsets)


def local_block(
    X: np.ndarray | CSRMatrix | CSCMatrix, part: ColumnPartition, rank: int
) -> np.ndarray | CSCMatrix:
    """Extract rank-local columns of ``X`` (dense slice or CSC block)."""
    sl = part.local_slice(rank)
    if isinstance(X, np.ndarray):
        return X[:, sl]
    csc = X.to_csc() if isinstance(X, CSRMatrix) else X
    return csc.select_columns(np.arange(sl.start, sl.stop, dtype=np.int64))
