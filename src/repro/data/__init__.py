"""Datasets: synthetic generators and the Table 2 benchmark registry."""

from repro.data.synthetic import make_regression, make_correlated_regression
from repro.data.datasets import (
    Dataset,
    DatasetSpec,
    DATASETS,
    get_dataset,
    dataset_table,
    dataset_from_libsvm,
)
from repro.data.scaling import normalize_feature_rows, normalize_sample_columns, center_labels

__all__ = [
    "make_regression",
    "make_correlated_regression",
    "Dataset",
    "DatasetSpec",
    "DATASETS",
    "get_dataset",
    "dataset_table",
    "dataset_from_libsvm",
    "normalize_feature_rows",
    "normalize_sample_columns",
    "center_labels",
]
