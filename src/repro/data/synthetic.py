"""Synthetic sparse-regression problem generators.

Problems are generated in the paper's layout — ``X ∈ R^{d×m}`` with one
*column* per sample — from a sparse ground-truth coefficient vector, so
that l1 recovery is meaningful and the relative-objective-error curves
have the same qualitative behaviour as on the LIBSVM datasets.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSCMatrix
from repro.sparse.random import random_coo
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_in_range, check_positive

__all__ = ["make_regression", "make_correlated_regression"]


def _ground_truth(rng: np.random.Generator, d: int, support: int) -> np.ndarray:
    w = np.zeros(d)
    idx = rng.choice(d, size=support, replace=False)
    w[idx] = rng.standard_normal(support) * 2.0
    return w


def make_regression(
    d: int,
    m: int,
    *,
    density: float = 1.0,
    support_fraction: float = 0.2,
    noise: float = 0.05,
    spectral_decay: float = 1.0,
    rng: RandomState = 0,
) -> tuple[np.ndarray | CSCMatrix, np.ndarray, np.ndarray]:
    """Generate ``(X, y, w_true)`` with ``y = Xᵀ w_true + ε``.

    Parameters
    ----------
    d, m:
        Features and samples (``X`` has shape ``(d, m)``).
    density:
        Fill fraction of ``X``; 1.0 yields a dense ndarray, anything lower
        a :class:`CSCMatrix` with exactly that realized fill.
    support_fraction:
        Fraction of features with non-zero ground-truth coefficient.
    noise:
        Standard deviation of the additive label noise.
    spectral_decay:
        Power-law exponent α of the feature covariance: row ``j`` is scaled
        by ``(j+1)^{-α/2}``, giving Hessian eigenvalues decaying like
        ``j^{-α}``. Real datasets (mnist pixels, covtype measurements) have
        fast-decaying spectra — which is precisely what makes subsampled
        Hessian approximation effective; α = 0 reproduces the isotropic
        worst case.
    """
    if d < 1 or m < 1:
        raise ValidationError(f"d and m must be >= 1, got ({d}, {m})")
    check_in_range(density, "density", 0.0, 1.0, low_inclusive=False)
    check_in_range(support_fraction, "support_fraction", 0.0, 1.0, low_inclusive=False)
    check_positive(noise, "noise", strict=False)
    check_positive(spectral_decay, "spectral_decay", strict=False)
    gen = as_generator(rng)
    support = max(1, int(round(support_fraction * d)))
    w_true = _ground_truth(gen, d, support)
    # Random feature permutation so the decaying scales are not correlated
    # with the ground-truth support layout.
    scales = np.arange(1, d + 1, dtype=np.float64) ** (-0.5 * spectral_decay)
    scales = scales[gen.permutation(d)]

    if density >= 1.0:
        X: np.ndarray | CSCMatrix = scales[:, None] * gen.standard_normal((d, m))
        predictions = X.T @ w_true
    else:
        coo = random_coo(d, m, density, rng=gen)
        X = COOMatrix(coo.rows, coo.cols, coo.data * scales[coo.rows], coo.shape).to_csc()
        predictions = X.rmatvec(w_true)
    y = predictions + noise * gen.standard_normal(m)
    return X, y, w_true


def make_correlated_regression(
    d: int,
    m: int,
    *,
    correlation: float = 0.5,
    support_fraction: float = 0.2,
    noise: float = 0.05,
    rng: RandomState = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense problem with AR(1)-correlated features (condition-number knob).

    Adjacent features have correlation ``ρ = correlation``; higher ρ makes
    the Hessian worse conditioned, slowing first-order solvers — useful for
    stress-testing acceleration and Hessian-reuse.
    """
    if d < 1 or m < 1:
        raise ValidationError(f"d and m must be >= 1, got ({d}, {m})")
    rho = check_in_range(correlation, "correlation", 0.0, 1.0, high_inclusive=False)
    check_positive(noise, "noise", strict=False)
    gen = as_generator(rng)
    w_true = _ground_truth(gen, d, max(1, int(round(support_fraction * d))))

    # AR(1) process down the feature axis: x_j = ρ x_{j-1} + √(1−ρ²) ε_j.
    Z = gen.standard_normal((d, m))
    X = np.empty((d, m))
    X[0] = Z[0]
    scale = np.sqrt(1.0 - rho * rho)
    for j in range(1, d):
        X[j] = rho * X[j - 1] + scale * Z[j]
    y = X.T @ w_true + noise * gen.standard_normal(m)
    return X, y, w_true
