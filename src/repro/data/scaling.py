"""Feature/label preprocessing.

Standard lasso practice: scale feature rows to unit norm so a single λ is
meaningful across features, and (dense data only) center labels. Sparse
matrices are scaled without centering to preserve sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSCMatrix, CSRMatrix
from repro.exceptions import ValidationError

__all__ = ["normalize_feature_rows", "normalize_sample_columns", "center_labels"]


def normalize_sample_columns(
    X: np.ndarray | CSRMatrix | CSCMatrix,
) -> tuple[np.ndarray | CSCMatrix, np.ndarray]:
    """Scale each *sample* (column of the d × m matrix) to unit norm.

    This mirrors the preprocessing of the paper's LIBSVM datasets (epsilon
    ships unit-normalized; mnist/covtype are conventionally scaled), and it
    is what makes the per-sample Lipschitz constants ``‖x_i‖² = 1`` so the
    stochastic step-size rule stays close to the deterministic one.
    Returns ``(X_scaled, norms)``; zero columns are left untouched. Sparse
    input comes back as CSC.
    """
    if isinstance(X, np.ndarray):
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        norms = np.linalg.norm(X, axis=0)
        safe = np.where(norms > 0, norms, 1.0)
        return X / safe[None, :], norms
    csc = X.to_csc() if isinstance(X, CSRMatrix) else X
    if not isinstance(csc, CSCMatrix):
        raise ValidationError(f"unsupported matrix type {type(X).__name__}")
    norms = np.sqrt(csc.col_norms_sq())
    safe = np.where(norms > 0, norms, 1.0)
    col_ids = np.repeat(np.arange(csc.shape[1], dtype=np.int64), np.diff(csc.indptr))
    data = csc.data / safe[col_ids]
    return CSCMatrix(csc.indptr, csc.indices, data, csc.shape), norms


def normalize_feature_rows(
    X: np.ndarray | CSRMatrix | CSCMatrix,
) -> tuple[np.ndarray | CSRMatrix | CSCMatrix, np.ndarray]:
    """Scale each feature row of ``X`` (d × m) to unit euclidean norm.

    Returns ``(X_scaled, norms)``; zero rows are left untouched (their norm
    entry is reported as 0). The operation preserves the storage format.
    """
    if isinstance(X, np.ndarray):
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        norms = np.linalg.norm(X, axis=1)
        safe = np.where(norms > 0, norms, 1.0)
        return X / safe[:, None], norms
    if isinstance(X, CSRMatrix):
        norms = np.sqrt(X.row_norms_sq())
        safe = np.where(norms > 0, norms, 1.0)
        row_ids = np.repeat(np.arange(X.shape[0], dtype=np.int64), np.diff(X.indptr))
        data = X.data / safe[row_ids]
        return CSRMatrix(X.indptr, X.indices, data, X.shape), norms
    if isinstance(X, CSCMatrix):
        csr = X.to_csr()
        scaled, norms = normalize_feature_rows(csr)
        return scaled.to_csc(), norms  # type: ignore[union-attr]
    raise ValidationError(f"unsupported matrix type {type(X).__name__}")


def center_labels(y: np.ndarray) -> tuple[np.ndarray, float]:
    """Return ``(y − mean, mean)``."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-D, got shape {y.shape}")
    mean = float(y.mean()) if y.size else 0.0
    return y - mean, mean
