"""Benchmark dataset registry mirroring the paper's Table 2.

The paper evaluates on five LIBSVM datasets (abalone, SUSY, covtype,
mnist, epsilon). Those files are not available offline, so each registry
entry generates a synthetic problem with the *shape signature* that drives
the paper's trade-offs — aspect ratio m/d, fill fraction f, dense/sparse
storage and the per-dataset regularization λ of §5.1 — at container scale.
Paper-scale dimensions are retained in the spec for reporting (Table 2
regeneration) and the scaled dimensions are what experiments run on.

``abalone`` is small enough to keep at full paper size. ``mnist`` and
``epsilon`` keep their aspect regime but shrink ``d`` (the d² Hessian
traffic stays the experiments' dominant term, just smaller). Every
generated problem is deterministic given the registry seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objectives import L1LeastSquares
from repro.data.scaling import normalize_sample_columns
from repro.data.synthetic import make_regression
from repro.exceptions import DatasetError
from repro.sparse.csr import CSCMatrix

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASETS",
    "get_dataset",
    "dataset_table",
    "dataset_from_libsvm",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: paper-scale facts plus the scaled generation recipe."""

    name: str
    paper_rows: int  # samples in the paper's Table 2 ("Row numbers")
    paper_cols: int  # features ("Column numbers")
    paper_density: float  # percentage of nnz, f
    paper_size: str  # storage size as printed in Table 2
    scaled_m: int  # samples generated here
    scaled_d: int  # features generated here
    density: float  # fill of the generated matrix
    lam: float  # the paper's tuned λ (§5.1), reported in Table 2 output
    lam_ratio: float  # this repo's λ as a fraction of λ_max = ‖∇f(0)‖∞
    seed: int  # generation seed (deterministic)
    note: str = ""


@dataclass(frozen=True)
class Dataset:
    """A generated benchmark problem.

    Samples (columns) are unit-normalized — mirroring the preprocessing of
    the paper's LIBSVM datasets — and ``lam`` is the effective λ computed
    as ``spec.lam_ratio × ‖∇f(0)‖∞`` for *this* problem instance (the
    paper tunes λ per dataset; the ratio preserves relative strength
    across scales).
    """

    spec: DatasetSpec
    X: np.ndarray | CSCMatrix
    y: np.ndarray
    w_true: np.ndarray
    lam: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def d(self) -> int:
        return self.X.shape[0]

    @property
    def m(self) -> int:
        return self.X.shape[1]

    @property
    def density(self) -> float:
        if isinstance(self.X, np.ndarray):
            return float(np.count_nonzero(self.X)) / self.X.size
        return self.X.density

    def problem(self, lam: float | None = None) -> L1LeastSquares:
        """Build the :class:`L1LeastSquares` instance (effective λ default)."""
        return L1LeastSquares(self.X, self.y, self.lam if lam is None else lam)


DATASETS: dict[str, DatasetSpec] = {
    "abalone": DatasetSpec(
        name="abalone",
        paper_rows=4_177,
        paper_cols=8,
        paper_density=1.0,
        paper_size="258.7KB",
        scaled_m=4_177,
        scaled_d=8,
        density=1.0,
        lam=0.1,
        lam_ratio=0.1,
        seed=101,
        note="kept at full paper size (dense)",
    ),
    "susy": DatasetSpec(
        name="susy",
        paper_rows=5_000_000,
        paper_cols=18,
        paper_density=0.2539,
        paper_size="2.47GB",
        scaled_m=20_000,
        scaled_d=18,
        density=0.2539,
        lam=0.1,
        lam_ratio=0.1,
        seed=102,
        note="m scaled 5M → 20k; d and f preserved",
    ),
    "covtype": DatasetSpec(
        name="covtype",
        paper_rows=581_012,
        paper_cols=54,
        paper_density=0.2212,
        paper_size="71.2MB",
        scaled_m=10_000,
        scaled_d=54,
        density=0.2212,
        lam=0.1,
        lam_ratio=0.1,
        seed=103,
        note="m scaled 581k → 10k; d and f preserved",
    ),
    "mnist": DatasetSpec(
        name="mnist",
        paper_rows=60_000,
        paper_cols=780,
        paper_density=0.1922,
        paper_size="114.8MB",
        scaled_m=4_000,
        scaled_d=196,
        density=0.1922,
        lam=0.1,
        lam_ratio=0.1,
        seed=104,
        note="m 60k → 4k, d 780 → 196 (simulator memory); f preserved",
    ),
    "epsilon": DatasetSpec(
        name="epsilon",
        paper_rows=400_000,
        paper_cols=2_000,
        paper_density=1.0,
        paper_size="12.16GB",
        scaled_m=4_000,
        scaled_d=400,
        density=1.0,
        lam=1e-4,
        lam_ratio=0.01,
        seed=105,
        note="m 400k → 4k, d 2000 → 400; dense regime preserved",
    ),
}


def get_dataset(name: str, *, size: str = "scaled") -> Dataset:
    """Generate a registry dataset deterministically.

    ``size="scaled"`` (default) builds the container-scale problem;
    ``size="tiny"`` builds a ~10× smaller variant with the same shape
    signature, for fast tests.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    if size == "scaled":
        m, d = spec.scaled_m, spec.scaled_d
    elif size == "tiny":
        m, d = max(64, spec.scaled_m // 10), max(4, spec.scaled_d // 4)
    else:
        raise DatasetError(f"size must be 'scaled' or 'tiny', got {size!r}")
    X, y, w_true = make_regression(
        d,
        m,
        density=spec.density,
        support_fraction=0.3,
        noise=0.1,
        rng=spec.seed,
    )
    X, _norms = normalize_sample_columns(X)
    # λ_max = ‖∇f(0)‖∞ = ‖(1/m) X y‖∞: above it the lasso solution is 0.
    grad0 = (X @ y if isinstance(X, np.ndarray) else X.matvec(y)) / m
    lam = spec.lam_ratio * float(np.max(np.abs(grad0)))
    return Dataset(spec=spec, X=X, y=y, w_true=w_true, lam=lam)


def dataset_from_libsvm(
    path: str,
    *,
    name: str = "custom",
    lam_ratio: float = 0.1,
    normalize: bool = True,
    n_features: int | None = None,
) -> Dataset:
    """Wrap a real LIBSVM file in the registry's :class:`Dataset` interface.

    Applies the same preprocessing the synthetic registry uses (unit-norm
    samples, λ as a fraction of λ_max) so real data drops into every
    experiment and solver unchanged. ``w_true`` is unknown for real data
    and returned as zeros.
    """
    from repro.sparse.io import load_libsvm

    if not (0.0 < lam_ratio <= 1.0):
        raise DatasetError(f"lam_ratio must lie in (0, 1], got {lam_ratio}")
    X, y = load_libsvm(path, n_features=n_features)
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise DatasetError(f"{path} contains no usable data")
    if normalize:
        X, _norms = normalize_sample_columns(X)
    grad0 = (X @ y if isinstance(X, np.ndarray) else X.matvec(y)) / X.shape[1]
    lam_max = float(np.max(np.abs(grad0)))
    if lam_max <= 0:
        raise DatasetError("labels are orthogonal to the data; lambda_max is zero")
    spec = DatasetSpec(
        name=name,
        paper_rows=X.shape[1],
        paper_cols=X.shape[0],
        paper_density=X.density if not isinstance(X, np.ndarray) else 1.0,
        paper_size="n/a",
        scaled_m=X.shape[1],
        scaled_d=X.shape[0],
        density=X.density if not isinstance(X, np.ndarray) else 1.0,
        lam=lam_ratio,
        lam_ratio=lam_ratio,
        seed=0,
        note=f"loaded from {path}",
    )
    return Dataset(spec=spec, X=X, y=y, w_true=np.zeros(X.shape[0]), lam=lam_ratio * lam_max)


def dataset_table(*, size: str = "scaled") -> list[dict[str, object]]:
    """Rows regenerating Table 2 (paper values + this repo's scaled values)."""
    rows = []
    for name in DATASETS:
        ds = get_dataset(name, size=size)
        spec = ds.spec
        rows.append(
            {
                "dataset": name,
                "paper_rows": spec.paper_rows,
                "paper_cols": spec.paper_cols,
                "paper_f": spec.paper_density,
                "paper_size": spec.paper_size,
                "scaled_rows": ds.m,
                "scaled_cols": ds.d,
                "scaled_f": round(ds.density, 4),
                "paper_lambda": spec.lam,
                "lambda": round(ds.lam, 6),
                "note": spec.note,
            }
        )
    return rows
