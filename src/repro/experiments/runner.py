"""Experiment orchestration.

Key observation exploited throughout: on the simulator, a solver's *iterate
trajectory* is independent of the processor count ``P`` (the distributed
runs reproduce the serial arithmetic exactly — asserted by the integration
tests). Only the simulated clock depends on ``(P, machine, k, S)``. Large
parameter sweeps therefore:

1. run the **serial** solver once per algorithmic configuration to find the
   iteration count needed to reach the target tolerance, then
2. **dry-run** the distributed cost schedule for each ``P`` — a
   :class:`~repro.distsim.bsp.BSPCluster` is driven through exactly the
   phases the real distributed solver executes (same labels, same collective
   sizes, same flop charges in expectation) without repeating the numerics.

The dry-run is validated against the real distributed solvers in
``tests/test_experiments/test_runner.py`` — message and word counters must
agree exactly, clocks to within the flop-expectation tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objectives import L1LeastSquares
from repro.core.rc_sfista import rc_sfista
from repro.core.reference import solve_reference
from repro.core.results import SolveResult
from repro.core.stopping import StoppingCriterion
from repro.distsim.bsp import BSPCluster
from repro.distsim.machine import MachineSpec
from repro.exceptions import ValidationError
from repro.sparse.csr import CSCMatrix, CSRMatrix
from repro.utils.rng import RandomState

__all__ = [
    "ProblemStats",
    "dry_run_sfista",
    "dry_run_rc_sfista",
    "iterations_to_tolerance",
    "speedup_cell",
    "reference_value",
]


@dataclass(frozen=True)
class ProblemStats:
    """Shape metadata the cost schedule depends on."""

    d: int
    m: int
    nnz: int

    @property
    def density(self) -> float:
        total = self.d * self.m
        return self.nnz / total if total else 0.0

    @staticmethod
    def of(problem: L1LeastSquares) -> "ProblemStats":
        X = problem.X
        if isinstance(X, np.ndarray):
            nnz = int(np.count_nonzero(X))
        elif isinstance(X, (CSRMatrix, CSCMatrix)):
            nnz = X.nnz
        else:  # pragma: no cover - defensive
            raise ValidationError(f"unsupported matrix type {type(X).__name__}")
        return ProblemStats(d=X.shape[0], m=X.shape[1], nnz=nnz)


def _charge_hessian_phase(
    cluster: BSPCluster, stats: ProblemStats, mbar: int, blocks: int, with_rhs: bool
) -> None:
    """Expected per-rank flops of forming *blocks* sampled (H, R) pairs.

    Matches :meth:`RankData.sampled_hessian_contribution`: sparse Gram
    charges 2·Σ nnz(x_s)²; in expectation each sampled column has
    ``nnz/m`` entries and each rank owns ``mbar/P`` of the sample.
    """
    P = cluster.nranks
    col_nnz = stats.nnz / stats.m if stats.m else 0.0
    local_cols = mbar / P
    gram = 2.0 * local_cols * col_nnz * col_nnz
    rhs = 2.0 * local_cols * col_nnz if with_rhs else 0.0
    cluster.compute(blocks * (gram + rhs), label="hessian_blocks")


def _charge_anchor_gradient(cluster: BSPCluster, stats: ProblemStats) -> None:
    """SVRG epoch anchor: local full-gradient pass + d-word allreduce."""
    cluster.compute(4.0 * stats.nnz / cluster.nranks, label="anchor_gradient")
    cluster.charge_allreduce(stats.d, label="allreduce_anchor_grad")


def _update_flops(d: int) -> float:
    return 2.0 * d * d + 8.0 * d


def dry_run_sfista(
    stats: ProblemStats,
    nranks: int,
    machine: str | MachineSpec,
    *,
    n_iterations: int,
    mbar: int,
    estimator: str = "svrg",
    iters_per_epoch: int | None = None,
    allreduce_algorithm: str = "recursive_doubling",
    jitter_seed: RandomState = None,
) -> BSPCluster:
    """Drive a cluster through the SFISTA cost schedule (no numerics).

    Returns the cluster; read ``cluster.elapsed`` and ``cluster.cost``.
    ``n_iterations`` is the total inner-iteration count actually executed;
    ``iters_per_epoch`` is the anchor-refresh interval of the run being
    replayed (``None`` → one epoch covering everything), so the schedule
    pays the SVRG anchor allreduce exactly as often as the real solver did.
    """
    if iters_per_epoch is None:
        iters_per_epoch = n_iterations
    if n_iterations < 1 or iters_per_epoch < 1:
        raise ValidationError("n_iterations and iters_per_epoch must be >= 1")
    epochs = -(-n_iterations // iters_per_epoch)
    cluster = BSPCluster(
        nranks, machine, allreduce_algorithm=allreduce_algorithm, jitter_seed=jitter_seed
    )
    d = stats.d
    remaining = n_iterations
    for _epoch in range(epochs):
        iters = min(iters_per_epoch, remaining)
        if iters <= 0:
            break
        remaining -= iters
        if estimator == "svrg":
            _charge_anchor_gradient(cluster, stats)
        for _n in range(iters):
            _charge_hessian_phase(cluster, stats, mbar, 1, with_rhs=(estimator == "plain"))
            cluster.charge_allreduce(d * d + d, label="allreduce_HR")
            if estimator == "svrg":
                cluster.compute(2.0 * d * d, label="svrg_rhs")
            cluster.compute(_update_flops(d), label="update")
    return cluster


def dry_run_rc_sfista(
    stats: ProblemStats,
    nranks: int,
    machine: str | MachineSpec,
    *,
    n_iterations: int,
    mbar: int,
    k: int,
    S: int,
    estimator: str = "svrg",
    iters_per_epoch: int | None = None,
    allreduce_algorithm: str = "recursive_doubling",
    jitter_seed: RandomState = None,
) -> BSPCluster:
    """Drive a cluster through the RC-SFISTA cost schedule (no numerics).

    See :func:`dry_run_sfista` for the epoch-structure semantics.
    """
    if iters_per_epoch is None:
        iters_per_epoch = n_iterations
    if min(n_iterations, k, S, iters_per_epoch) < 1:
        raise ValidationError("n_iterations, k, S, iters_per_epoch must be >= 1")
    epochs = -(-n_iterations // iters_per_epoch)
    cluster = BSPCluster(
        nranks, machine, allreduce_algorithm=allreduce_algorithm, jitter_seed=jitter_seed
    )
    d = stats.d
    remaining = n_iterations
    for _epoch in range(epochs):
        iters = min(iters_per_epoch, remaining)
        if iters <= 0:
            break
        remaining -= iters
        if estimator == "svrg":
            _charge_anchor_gradient(cluster, stats)
        n_rounds = -(-iters // k)
        done = 0
        for _rnd in range(n_rounds):
            block = min(k, iters - done)
            done += block
            _charge_hessian_phase(cluster, stats, mbar, block, with_rhs=(estimator == "plain"))
            cluster.charge_allreduce(block * (d * d + d), label="allreduce_G")
            for _j in range(block):
                if estimator == "svrg":
                    cluster.compute(2.0 * d * d, label="svrg_rhs")
                for _s in range(S):
                    cluster.compute(_update_flops(d), label="update")
    return cluster


def dry_run_pn_inner(
    stats: ProblemStats,
    nranks: int,
    machine: str | MachineSpec,
    *,
    inner: str,
    n_outer: int,
    inner_iters: int,
    mbar: int,
    k: int = 1,
    S: int = 1,
    allreduce_algorithm: str = "recursive_doubling",
) -> BSPCluster:
    """Cost schedule of distributed proximal Newton (Fig. 7).

    Mirrors :func:`repro.core.prox_newton.proximal_newton_distributed`
    phase-for-phase: ``inner="fista"`` pays one exact Hessian-apply plus a
    d-word allreduce per inner iteration; ``inner="sfista"`` one sampled
    block plus a (d²+d)-word allreduce per inner iteration;
    ``inner="rc_sfista"`` one k-block k(d²+d)-word allreduce per k inner
    iterations with S-fold Hessian reuse.
    """
    if inner not in ("fista", "sfista", "rc_sfista"):
        raise ValidationError(f"inner must be fista|sfista|rc_sfista, got {inner!r}")
    if min(n_outer, inner_iters, k, S) < 1:
        raise ValidationError("n_outer, inner_iters, k, S must be >= 1")
    cluster = BSPCluster(nranks, machine, allreduce_algorithm=allreduce_algorithm)
    d = stats.d
    for _outer in range(n_outer):
        # outer full gradient
        cluster.compute(4.0 * stats.nnz / nranks, label="full_gradient")
        cluster.charge_allreduce(d, label="allreduce_grad")
        if inner == "fista":
            for _i in range(inner_iters):
                cluster.compute(4.0 * stats.nnz / nranks, label="hessian_apply")
                cluster.charge_allreduce(d, label="allreduce_Hv")
                cluster.compute(8.0 * d, label="update")
        else:
            block_k = k if inner == "rc_sfista" else 1
            reuse_S = S if inner == "rc_sfista" else 1
            done = 0
            while done < inner_iters:
                block = min(block_k, inner_iters - done)
                _charge_hessian_phase(cluster, stats, mbar, block, with_rhs=False)
                cluster.charge_allreduce(block * d * d, label="allreduce_G")
                for _j in range(block):
                    cluster.compute(2.0 * d * d, label="model_rhs")
                    for _s in range(reuse_S):
                        cluster.compute(_update_flops(d), label="update")
                done += block
    return cluster


# ---------------------------------------------------------------------- #
# trajectory measurements (serial, P-independent)
# ---------------------------------------------------------------------- #
def reference_value(problem: L1LeastSquares, tol: float = 1e-8) -> float:
    """``F(w*)`` for *problem*, memoized on the problem instance.

    The cache lives on the object itself (not an id()-keyed module dict —
    ids are reused after garbage collection and would silently hand one
    problem another problem's optimum).
    """
    cache: dict[float, float] = problem.__dict__.setdefault("_reference_cache", {})
    if tol not in cache:
        cache[tol] = solve_reference(problem, tol=tol).meta["fstar"]
    return cache[tol]


def iterations_to_tolerance(
    problem: L1LeastSquares,
    *,
    tol: float,
    fstar: float | None = None,
    k: int = 1,
    S: int = 1,
    b: float = 0.1,
    estimator: str = "svrg",
    seed: RandomState = 0,
    epochs: int = 20,
    iters_per_epoch: int = 100,
    step_size: float | None = None,
    monitor_every: int = 1,
) -> SolveResult:
    """Serial RC-SFISTA run to the paper's stopping rule.

    Because trajectories are P-independent, the returned ``n_iterations``
    and ``n_comm_rounds`` are exactly what the distributed runs need; feed
    them to the dry-run schedulers to get simulated times for any P.
    """
    fstar = reference_value(problem) if fstar is None else fstar
    return rc_sfista(
        problem,
        k=k,
        S=S,
        b=b,
        estimator=estimator,
        seed=seed,
        epochs=epochs,
        iters_per_epoch=iters_per_epoch,
        step_size=step_size,
        stopping=StoppingCriterion(tol=tol, fstar=fstar),
        monitor_every=monitor_every,
    )


def speedup_cell(
    problem: L1LeastSquares,
    *,
    nranks: int,
    machine: str | MachineSpec,
    tol: float,
    k: int,
    S: int = 1,
    b: float = 0.01,
    estimator: str = "svrg",
    seed: RandomState = 0,
    epochs: int = 20,
    iters_per_epoch: int = 100,
    step_size: float | None = None,
    fstar: float | None = None,
    allreduce_algorithm: str = "recursive_doubling",
) -> dict[str, float]:
    """One (dataset, P, k, S) cell of Figs. 4–5.

    Runs the serial trajectories of SFISTA (k=S=1) and RC-SFISTA(k, S) to
    *tol*, then dry-runs both distributed cost schedules on *nranks* and
    reports simulated times and the speedup ratio.
    """
    stats = ProblemStats.of(problem)
    fstar = reference_value(problem) if fstar is None else fstar

    base = iterations_to_tolerance(
        problem, tol=tol, fstar=fstar, k=1, S=1, b=b, estimator=estimator, seed=seed,
        epochs=epochs, iters_per_epoch=iters_per_epoch, step_size=step_size,
    )
    rc = iterations_to_tolerance(
        problem, tol=tol, fstar=fstar, k=k, S=S, b=b, estimator=estimator, seed=seed,
        epochs=epochs, iters_per_epoch=iters_per_epoch, step_size=step_size,
    )
    mbar = base.meta["mbar"]

    sf_cluster = dry_run_sfista(
        stats, nranks, machine, n_iterations=base.n_iterations, mbar=mbar,
        estimator=estimator, iters_per_epoch=iters_per_epoch,
        allreduce_algorithm=allreduce_algorithm,
    )
    rc_cluster = dry_run_rc_sfista(
        stats, nranks, machine, n_iterations=rc.n_iterations, mbar=mbar,
        k=k, S=S, estimator=estimator, iters_per_epoch=iters_per_epoch,
        allreduce_algorithm=allreduce_algorithm,
    )
    t_sf = sf_cluster.elapsed
    t_rc = rc_cluster.elapsed
    return {
        "nranks": nranks,
        "k": k,
        "S": S,
        "iters_sfista": base.n_iterations,
        "iters_rc": rc.n_iterations,
        "rounds_rc": rc.n_comm_rounds,
        "time_sfista": t_sf,
        "time_rc": t_rc,
        "speedup": t_sf / t_rc if t_rc > 0 else float("inf"),
        "converged_sfista": float(base.converged),
        "converged_rc": float(rc.converged),
    }
