"""Minimal ASCII chart renderer for convergence curves in terminal output.

The benchmark harness prints the same *series* the paper plots; this gives
a quick visual check without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        return math.log10(max(v, 1e-300))
    return v


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series onto a character grid.

    Each series gets a distinct marker; later series overwrite earlier
    ones on collisions. Non-finite points are skipped.
    """
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")
    pts: list[tuple[float, float, str]] = []
    for (name, (xs, ys)), marker in zip(series.items(), _MARKERS * 4):
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: mismatched lengths")
        for x, y in zip(xs, ys):
            fy = _transform(float(y), log_y)
            fx = float(x)
            if math.isfinite(fx) and math.isfinite(fy):
                pts.append((fx, fy, marker))
    lines: list[str] = []
    if title:
        lines.append(title)
    if not pts:
        lines.append("(no finite data)")
        return "\n".join(lines)

    x_lo = min(p[0] for p in pts)
    x_hi = max(p[0] for p in pts)
    y_lo = min(p[1] for p in pts)
    y_hi = max(p[1] for p in pts)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in pts:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    y_top = f"{10 ** y_hi:.2g}" if log_y else f"{y_hi:.3g}"
    y_bot = f"{10 ** y_lo:.2g}" if log_y else f"{y_lo:.3g}"
    margin = max(len(y_top), len(y_bot), len(y_label)) + 1
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(margin)
        elif i == height - 1:
            prefix = y_bot.rjust(margin)
        elif i == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row_chars)}")
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(
        " " * margin + f" {x_lo:.3g}".ljust(width // 2) + f"{x_label}".center(8)
        + f"{x_hi:.3g}".rjust(width // 2 - 8)
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS * 4)
    )
    lines.append(" " * margin + " " + legend)
    return "\n".join(lines)
