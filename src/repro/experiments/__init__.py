"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.runner import (
    ProblemStats,
    dry_run_sfista,
    dry_run_rc_sfista,
    dry_run_pn_inner,
    iterations_to_tolerance,
    speedup_cell,
    reference_value,
)
from repro.experiments.figures import (
    fig2a_sampling_rate,
    fig2b_overlap_convergence,
    fig3_hessian_reuse,
    fig4_speedup_vs_k,
    fig5_speedup_vs_S,
    fig6_proxcocoa_convergence,
    fig7_pn_inner_solver,
    table1_costs,
    table2_datasets,
    table3_proxcocoa_speedup,
)
from repro.experiments.ascii_plot import ascii_chart

__all__ = [
    "ProblemStats",
    "dry_run_sfista",
    "dry_run_rc_sfista",
    "dry_run_pn_inner",
    "iterations_to_tolerance",
    "speedup_cell",
    "reference_value",
    "fig2a_sampling_rate",
    "fig2b_overlap_convergence",
    "fig3_hessian_reuse",
    "fig4_speedup_vs_k",
    "fig5_speedup_vs_S",
    "fig6_proxcocoa_convergence",
    "fig7_pn_inner_solver",
    "table1_costs",
    "table2_datasets",
    "table3_proxcocoa_speedup",
    "ascii_chart",
]
