"""Command-line front end: regenerate any paper table or figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig2b --quick
    python -m repro.experiments table3
    python -m repro.experiments all --quick

Output is the same textual rendering the benchmark harness writes to
``benchmarks/output/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

from repro.experiments import figures
from repro.experiments.ascii_plot import ascii_chart
from repro.perf.report import format_table

EXPERIMENTS: dict[str, Callable[..., dict[str, Any]]] = {
    "fig2a": figures.fig2a_sampling_rate,
    "fig2b": figures.fig2b_overlap_convergence,
    "fig3": figures.fig3_hessian_reuse,
    "fig4": figures.fig4_speedup_vs_k,
    "fig5": figures.fig5_speedup_vs_S,
    "fig6": figures.fig6_proxcocoa_convergence,
    "fig7": figures.fig7_pn_inner_solver,
    "table1": figures.table1_costs,
    "table2": figures.table2_datasets,
    "table3": figures.table3_proxcocoa_speedup,
}


def _render(name: str, out: dict[str, Any]) -> str:
    """Generic rendering: tables for row-results, charts for series."""
    parts: list[str] = [f"# {name}"]
    if "rows" in out and out["rows"]:
        headers = list(out["rows"][0].keys())
        rows = [[r.get(h, "") for h in headers] for r in out["rows"]]
        parts.append(format_table(headers, rows))
    if "series" in out:
        parts.append(
            ascii_chart(out["series"], log_y=True, x_label="iteration", y_label="rel err")
        )
    if "series_by_dataset" in out:
        for ds, series in out["series_by_dataset"].items():
            plottable = {
                k: v for k, v in series.items() if isinstance(v, tuple) and len(v) == 2
            }
            if plottable:
                parts.append(ascii_chart(plottable, log_y=True, title=ds))
    for key in ("max_deviation", "table3_speedups"):
        if key in out:
            parts.append(f"{key}: {out[key]}")
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "list", "all"])
    parser.add_argument("--quick", action="store_true", help="small/fast configuration")
    parser.add_argument("--json", action="store_true", help="dump raw results as JSON")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} {doc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn = EXPERIMENTS[name]
        kwargs: dict[str, Any] = {}
        if "quick" in fn.__code__.co_varnames:
            kwargs["quick"] = args.quick
        elif name == "table2":
            kwargs["size"] = "tiny" if args.quick else "scaled"
        out = fn(**kwargs)
        if args.json:
            print(json.dumps(out, default=lambda o: getattr(o, "tolist", lambda: str(o))()))
        else:
            print(_render(name, out))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
