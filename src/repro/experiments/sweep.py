"""Cached parameter sweeps.

Experiment grids (Figs. 4–5 style) are expensive and deterministic, so
re-running a sweep after adding one grid point should only compute the new
cell. :func:`run_sweep` walks the cartesian product of a parameter grid,
caches each cell's JSON-able result on disk keyed by the cell's parameters,
and returns the combined rows.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.exceptions import ValidationError

__all__ = ["grid_cells", "cell_key", "run_sweep"]


def grid_cells(grid: Mapping[str, Sequence[Any]]) -> Iterator[dict[str, Any]]:
    """Yield the cartesian product of *grid* as parameter dicts.

    Keys are iterated in sorted order so cell enumeration (and therefore
    cache keys) is independent of dict insertion order.
    """
    if not grid:
        raise ValidationError("grid must have at least one parameter")
    keys = sorted(grid)
    for key in keys:
        if len(grid[key]) == 0:
            raise ValidationError(f"grid parameter {key!r} has no values")
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


def cell_key(params: Mapping[str, Any]) -> str:
    """Stable filename-safe key for one grid cell."""
    canonical = json.dumps({k: params[k] for k in sorted(params)}, sort_keys=True,
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def run_sweep(
    fn: Callable[..., Mapping[str, Any]],
    grid: Mapping[str, Sequence[Any]],
    *,
    cache_dir: str | Path | None = None,
    name: str = "sweep",
    progress: Callable[[dict[str, Any], bool], None] | None = None,
) -> list[dict[str, Any]]:
    """Evaluate ``fn(**params)`` over the grid with per-cell disk caching.

    Parameters
    ----------
    fn:
        Called with each cell's parameters as keyword arguments; must
        return a JSON-serializable mapping.
    grid:
        ``{param: [values...]}``.
    cache_dir:
        Directory for per-cell JSON artifacts (``None`` disables caching).
    progress:
        Optional callback ``(params, was_cached)`` per cell.

    Returns the list of result rows, each the cell parameters merged with
    the function's output (function keys win on collision).
    """
    cache_path = Path(cache_dir) / name if cache_dir is not None else None
    if cache_path is not None:
        cache_path.mkdir(parents=True, exist_ok=True)

    rows: list[dict[str, Any]] = []
    for params in grid_cells(grid):
        cached = False
        result: Mapping[str, Any] | None = None
        cell_file = cache_path / f"{cell_key(params)}.json" if cache_path else None
        if cell_file is not None and cell_file.exists():
            try:
                result = json.loads(cell_file.read_text(encoding="utf-8"))
                cached = True
            except json.JSONDecodeError:
                result = None  # corrupt cache entry: recompute
        if result is None:
            result = dict(fn(**params))
            if cell_file is not None:
                cell_file.write_text(json.dumps(result), encoding="utf-8")
        if progress is not None:
            progress(params, cached)
        rows.append({**params, **result})
    return rows
