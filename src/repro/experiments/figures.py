"""One entry point per table/figure of the paper's evaluation (§5).

Every function returns a structured dict (series/rows plus metadata) so
the benchmark harness can both print the paper-shaped output and assert
the qualitative claims. ``quick=True`` shrinks datasets and iteration
budgets for the test-suite; default settings are the container-scale
reproduction reported in EXPERIMENTS.md.

Figure/table map (see DESIGN.md §3): 2a sampling rate, 2b overlap
invariance, 3 Hessian-reuse convergence, 4 speedup vs k, 5 speedup vs S,
6 ProxCoCoA convergence, 7 PN inner solvers, tables 1–3.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.objectives import L1LeastSquares
from repro.core.proxcocoa import proxcocoa
from repro.core.rc_sfista import rc_sfista
from repro.core.sfista import sfista
from repro.core.fista import fista
from repro.core.stopping import StoppingCriterion
from repro.core.sfista_dist import sfista_distributed
from repro.core.rc_sfista_dist import rc_sfista_distributed
from repro.data.datasets import DATASETS, dataset_table, get_dataset
from repro.distsim.collectives import ceil_log2
from repro.perf.bounds import k_bound_latency_bandwidth
from repro.perf.model import rc_sfista_costs, sfista_costs
from repro.experiments.runner import (
    ProblemStats,
    dry_run_pn_inner,
    dry_run_rc_sfista,
    iterations_to_tolerance,
    reference_value,
    speedup_cell,
)

__all__ = [
    "fig2a_sampling_rate",
    "fig2b_overlap_convergence",
    "fig3_hessian_reuse",
    "fig4_speedup_vs_k",
    "fig5_speedup_vs_S",
    "fig6_proxcocoa_convergence",
    "fig7_pn_inner_solver",
    "table1_costs",
    "table2_datasets",
    "table3_proxcocoa_speedup",
]

# The four datasets the paper's §5.3–5.5 figures sweep.
FIGURE_DATASETS = ("susy", "covtype", "mnist", "epsilon")
MACHINE = "comet_effective"


def _problem(name: str, quick: bool) -> L1LeastSquares:
    return get_dataset(name, size="tiny" if quick else "scaled").problem()


# ---------------------------------------------------------------------- #
# Figure 2a — effect of the sampling rate b on convergence
# ---------------------------------------------------------------------- #
def fig2a_sampling_rate(
    *,
    dataset: str = "mnist",
    bs: tuple[float, ...] = (1.0, 0.5, 0.1, 0.05, 0.01),
    n_iters: int = 300,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Relative objective error vs iteration for several sampling rates b.

    Paper claim: with variance reduction the convergence for small b is
    "almost identical" to FISTA (b=1) while the per-iteration flops shrink
    by 1/b.
    """
    problem = _problem(dataset, quick)
    if quick:
        n_iters = min(n_iters, 60)
    fstar = reference_value(problem)
    stop = StoppingCriterion(tol=1e-12, fstar=fstar)  # never fires; monitors rel error
    series: dict[str, tuple[list[int], list[float]]] = {}
    ref_run = fista(problem, max_iter=n_iters, stopping=stop)
    series["fista"] = (list(ref_run.history.iterations), list(ref_run.history.rel_errors))
    iters_per_epoch = min(50, n_iters)
    epochs = -(-n_iters // iters_per_epoch)
    for b in bs:
        run = sfista(
            problem, b=b, estimator="svrg", epochs=epochs,
            iters_per_epoch=iters_per_epoch, seed=seed, stopping=stop,
            restart_momentum=False,
        )
        series[f"b={b:g}"] = (list(run.history.iterations), list(run.history.rel_errors))
    return {"figure": "2a", "dataset": dataset, "fstar": fstar, "series": series}


# ---------------------------------------------------------------------- #
# Figure 2b — k does not change convergence (exact-arithmetic invariance)
# ---------------------------------------------------------------------- #
def fig2b_overlap_convergence(
    *,
    dataset: str = "mnist",
    ks: tuple[int, ...] = (1, 2, 4, 8, 32, 128),
    n_iters: int = 256,
    b: float = 0.1,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """RC-SFISTA curves for several k with the same seed — identical.

    The returned ``max_deviation`` quantifies numerical-stability of the
    overlap (paper: tested stable up to k = 128).
    """
    problem = _problem(dataset, quick)
    if quick:
        n_iters = min(n_iters, 64)
        ks = tuple(k for k in ks if k <= n_iters)
    fstar = reference_value(problem)
    stop = StoppingCriterion(tol=1e-12, fstar=fstar)
    series: dict[str, tuple[list[int], list[float]]] = {}
    finals: list[np.ndarray] = []
    iters_per_epoch = min(64, n_iters)
    epochs = -(-n_iters // iters_per_epoch)
    for k in ks:
        run = rc_sfista(
            problem, k=k, S=1, b=b, epochs=epochs, iters_per_epoch=iters_per_epoch,
            seed=seed, stopping=stop, restart_momentum=False,
        )
        series[f"k={k}"] = (list(run.history.iterations), list(run.history.rel_errors))
        finals.append(run.w)
    max_dev = max(
        (float(np.max(np.abs(fin - finals[0]))) for fin in finals[1:]), default=0.0
    )
    return {
        "figure": "2b",
        "dataset": dataset,
        "series": series,
        "max_deviation": max_dev,
        "ks": list(ks),
    }


# ---------------------------------------------------------------------- #
# Figure 3 — effect of the Hessian-reuse parameter S
# ---------------------------------------------------------------------- #
def fig3_hessian_reuse(
    *,
    datasets: tuple[str, ...] = FIGURE_DATASETS,
    Ss: tuple[int, ...] = (1, 2, 5, 10),
    n_rounds: int = 150,
    k: int = 1,
    b: float = 0.05,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Relative objective error vs *communication round* for several S.

    Paper claim: small S improves convergence per round; S=10 over-solves
    the subproblem and degrades.
    """
    if quick:
        datasets = datasets[:2]
        n_rounds = min(n_rounds, 40)
    results: dict[str, dict[str, tuple[list[int], list[float]]]] = {}
    for name in datasets:
        problem = _problem(name, quick)
        fstar = reference_value(problem)
        stop = StoppingCriterion(tol=1e-12, fstar=fstar)
        series: dict[str, tuple[list[int], list[float]]] = {}
        iters_per_epoch = min(50, n_rounds * k)
        epochs = -(-(n_rounds * k) // iters_per_epoch)
        for S in Ss:
            run = rc_sfista(
                problem, k=k, S=S, b=b, epochs=epochs, iters_per_epoch=iters_per_epoch,
                seed=seed, stopping=stop, restart_momentum=False,
            )
            rounds = [
                -(-it // k) for it in run.history.iterations
            ]  # sampled iteration → round
            series[f"S={S}"] = (rounds, list(run.history.rel_errors))
        results[name] = series
    return {"figure": "3", "series_by_dataset": results, "Ss": list(Ss)}


# ---------------------------------------------------------------------- #
# Figure 4 — speedup of RC-SFISTA over SFISTA vs k, for several P
# ---------------------------------------------------------------------- #
def fig4_speedup_vs_k(
    *,
    datasets: tuple[str, ...] = FIGURE_DATASETS,
    ks: tuple[int, ...] = (1, 2, 4, 8, 16),
    nranks: tuple[int, ...] = (16, 64, 256),
    tol: float = 0.01,
    b: float = 0.01,
    machine: str = MACHINE,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Speedup grid (dataset × P × k) with S = 1 — the Fig. 4 sweep."""
    if quick:
        datasets = datasets[:2]
        ks = ks[:3]
        nranks = nranks[:2]
    rows: list[dict[str, Any]] = []
    for name in datasets:
        problem = _problem(name, quick)
        fstar = reference_value(problem)
        for P in nranks:
            for k in ks:
                cell = speedup_cell(
                    problem, nranks=P, machine=machine, tol=tol, k=k, S=1, b=b,
                    seed=seed, fstar=fstar,
                )
                cell["dataset"] = name
                rows.append(cell)
    return {"figure": "4", "rows": rows, "machine": machine, "tol": tol}


# ---------------------------------------------------------------------- #
# Figure 5 — speedup vs S on 256 processors
# ---------------------------------------------------------------------- #
def fig5_speedup_vs_S(
    *,
    datasets: tuple[str, ...] = FIGURE_DATASETS,
    Ss: tuple[int, ...] = (1, 2, 5, 10),
    nranks: int = 256,
    tol: float = 0.01,
    b: float = 0.05,
    machine: str = MACHINE,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Speedup of RC-SFISTA(k tuned, S) over SFISTA on 256 ranks (Fig. 5)."""
    if quick:
        datasets = datasets[:2]
        Ss = Ss[:3]
        nranks = 32
    rows: list[dict[str, Any]] = []
    for name in datasets:
        problem = _problem(name, quick)
        fstar = reference_value(problem)
        d = problem.d
        k = max(1, min(8, int(k_bound_latency_bandwidth(machine, d))))
        for S in Ss:
            cell = speedup_cell(
                problem, nranks=nranks, machine=machine, tol=tol, k=k, S=S, b=b,
                seed=seed, fstar=fstar,
            )
            cell["dataset"] = name
            rows.append(cell)
    return {"figure": "5", "rows": rows, "machine": machine, "nranks": nranks, "tol": tol}


# ---------------------------------------------------------------------- #
# Figure 6 / Table 3 — RC-SFISTA vs ProxCoCoA
# ---------------------------------------------------------------------- #
def fig6_proxcocoa_convergence(
    *,
    datasets: tuple[str, ...] = FIGURE_DATASETS,
    nranks: int = 256,
    tol: float = 0.01,
    b: float = 0.01,
    machine: str = MACHINE,
    max_rounds: int = 200,
    local_epochs: int = 2,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Relative objective error vs simulated wall-clock, both solvers.

    RC-SFISTA's curve comes from the serial trajectory mapped onto the
    dry-run round clock (trajectories are P-independent); ProxCoCoA runs
    honestly on the simulated cluster. Returns per-dataset series plus the
    Table 3 speedups (time-to-tol ratios).
    """
    if quick:
        datasets = datasets[:2]
        nranks = 32
        max_rounds = 60
    results: dict[str, Any] = {}
    speedups: dict[str, float] = {}
    for name in datasets:
        problem = _problem(name, quick)
        fstar = reference_value(problem)
        stats = ProblemStats.of(problem)
        stop = StoppingCriterion(tol=tol, fstar=fstar)

        # --- RC-SFISTA: serial trajectory + dry-run clock --------------- #
        k = max(1, min(8, int(k_bound_latency_bandwidth(machine, problem.d))))
        S = 2
        budget = max_rounds * k
        rc = iterations_to_tolerance(
            problem, tol=tol, fstar=fstar, k=k, S=S, b=b, seed=seed,
            epochs=max(1, budget // 100), iters_per_epoch=min(100, budget),
        )
        cluster = dry_run_rc_sfista(
            stats, nranks, machine,
            n_iterations=max(1, rc.n_iterations), mbar=rc.meta["mbar"], k=k, S=S,
            iters_per_epoch=min(100, budget),
        )
        # Uniform rounds on a deterministic machine → linear round clock.
        per_round = cluster.elapsed / max(1, rc.n_comm_rounds)
        rc_times = [per_round * r for r in rc.history.comm_rounds]
        rc_series = (rc_times, list(rc.history.rel_errors))

        # --- ProxCoCoA: honest distributed run -------------------------- #
        cc = proxcocoa(
            problem, nranks, machine=machine, n_rounds=max_rounds,
            local_epochs=local_epochs, stopping=stop, seed=seed,
        )
        cc_series = (list(cc.history.sim_times), list(cc.history.rel_errors))

        t_rc = rc_times[-1] if rc.converged else None
        t_cc = cc.history.time_to_tolerance(tol)
        # Speedup at the tightest tolerance BOTH solvers reached: when the
        # slower solver exhausts its round budget above `tol` (ProxCoCoA
        # routinely does — that is the point of Fig. 6), compare at its
        # best achieved error instead of reporting nothing.
        rc_errs = np.asarray(rc.history.rel_errors)
        cc_errs = np.asarray(cc.history.rel_errors)
        common = max(tol, float(np.nanmin(rc_errs)), float(np.nanmin(cc_errs)))
        rc_hits = np.flatnonzero(rc_errs <= common + 1e-15)
        cc_hits = np.flatnonzero(cc_errs <= common + 1e-15)
        if rc_hits.size and cc_hits.size:
            speedup = cc.history.sim_times[int(cc_hits[0])] / max(
                rc_times[int(rc_hits[0])], 1e-30
            )
        else:
            speedup = float("nan")
        results[name] = {
            "rc_sfista": rc_series,
            "proxcocoa": cc_series,
            "rc_converged": rc.converged,
            "cc_converged": cc.converged,
            "k": k,
            "S": S,
            "time_rc": t_rc,
            "time_cc": t_cc,
            "common_tolerance": common,
        }
        speedups[name] = speedup
    return {
        "figure": "6",
        "series_by_dataset": results,
        "table3_speedups": speedups,
        "nranks": nranks,
        "machine": machine,
        "tol": tol,
    }


def table3_proxcocoa_speedup(**kwargs: Any) -> dict[str, Any]:
    """Table 3 — speedup of RC-SFISTA over ProxCoCoA (time-to-tol ratio)."""
    out = fig6_proxcocoa_convergence(**kwargs)
    paper = {"susy": 1.57, "covtype": 4.74, "mnist": 12.15, "epsilon": 3.53}
    rows = [
        {
            "dataset": name,
            "paper_speedup": paper.get(name, float("nan")),
            "measured_speedup": s,
        }
        for name, s in out["table3_speedups"].items()
    ]
    return {"table": "3", "rows": rows, "source": out}


# ---------------------------------------------------------------------- #
# Figure 7 — PN with RC-SFISTA vs FISTA inner solver, 512 processors
# ---------------------------------------------------------------------- #
def fig7_pn_inner_solver(
    *,
    datasets: tuple[str, ...] = FIGURE_DATASETS,
    ks: tuple[int, ...] = (1, 2, 4, 8, 16),
    nranks: int = 512,
    n_outer: int = 5,
    inner_iters: int = 64,
    S: int = 1,
    b: float = 0.01,
    machine: str = MACHINE,
    quick: bool = False,
) -> dict[str, Any]:
    """Speedup of PN(RC-SFISTA inner, k) over PN(FISTA inner) vs k.

    Both variants execute identical outer/inner iteration budgets (the
    paper tunes both; equal budgets isolate the communication effect the
    figure demonstrates). Times come from the dry-run cost schedules.
    """
    if quick:
        datasets = datasets[:2]
        ks = ks[:3]
        nranks = 32
        inner_iters = 16
    rows: list[dict[str, Any]] = []
    for name in datasets:
        problem = _problem(name, quick)
        stats = ProblemStats.of(problem)
        mbar = max(1, int(b * problem.m))
        base = dry_run_pn_inner(
            stats, nranks, machine, inner="fista", n_outer=n_outer,
            inner_iters=inner_iters, mbar=mbar,
        )
        for k in ks:
            rc = dry_run_pn_inner(
                stats, nranks, machine, inner="rc_sfista", n_outer=n_outer,
                inner_iters=inner_iters, mbar=mbar, k=k, S=S,
            )
            rows.append(
                {
                    "dataset": name,
                    "k": k,
                    "time_pn_fista": base.elapsed,
                    "time_pn_rc": rc.elapsed,
                    "speedup": base.elapsed / rc.elapsed if rc.elapsed > 0 else float("inf"),
                }
            )
    return {"figure": "7", "rows": rows, "nranks": nranks, "machine": machine}


# ---------------------------------------------------------------------- #
# Table 1 — model vs measured cost counters
# ---------------------------------------------------------------------- #
def table1_costs(
    *,
    dataset: str = "covtype",
    nranks: int = 8,
    n_iters: int = 24,
    k: int = 4,
    S: int = 2,
    b: float = 0.1,
    machine: str = MACHINE,
    quick: bool = False,
    seed: int = 0,
) -> dict[str, Any]:
    """Run both distributed solvers and compare L/F/W with the Table 1 model.

    Latency (messages) and bandwidth (words) must match the closed forms
    *exactly*; flops match in expectation (the model charges expected
    sampled-column fill).
    """
    problem = _problem(dataset, quick)
    mbar = max(1, int(b * problem.m))
    stats = ProblemStats.of(problem)
    f = stats.density
    d = problem.d

    sf = sfista_distributed(
        problem, nranks, machine=machine, b=b, iters_per_epoch=n_iters,
        estimator="plain", seed=seed, monitor_every=n_iters,
    )
    rc = rc_sfista_distributed(
        problem, nranks, machine=machine, k=k, S=S, b=b, iters_per_epoch=n_iters,
        estimator="plain", seed=seed, monitor_every=n_iters,
    )
    model_sf = sfista_costs(n_iters, d, mbar, f, nranks)
    model_rc = rc_sfista_costs(n_iters, d, mbar, f, nranks, k, S)
    rows = []
    for label, run, model in (("SFISTA", sf, model_sf), ("RC-SFISTA", rc, model_rc)):
        rows.append(
            {
                "algorithm": label,
                "L_measured": run.cost["messages_per_rank_max"],
                "L_model": model.latency,
                "W_measured": run.cost["words_per_rank_max"],
                "W_model": model.bandwidth,
                "F_measured": run.cost["flops_per_rank_max"],
                "F_model": model.flops,
            }
        )
    return {
        "table": "1",
        "rows": rows,
        "params": {
            "dataset": dataset, "P": nranks, "N": n_iters, "k": k, "S": S,
            "d": d, "mbar": mbar, "f": f, "logP": ceil_log2(nranks),
        },
    }


def table2_datasets(**kwargs: Any) -> dict[str, Any]:
    """Table 2 — the dataset registry (paper vs scaled shapes)."""
    return {"table": "2", "rows": dataset_table(**kwargs), "names": sorted(DATASETS)}
