"""repro — reproduction of *Reducing Communication in Proximal Newton
Methods for Sparse Least Squares Problems* (Soori et al., ICPP 2018).

The package implements RC-SFISTA (stochastic variance-reduced FISTA with
iteration overlapping and Hessian reuse), the proximal Newton framework it
serves as inner solver, the ProxCoCoA baseline, and a simulated
distributed-memory substrate with an α-β-γ performance model that stands
in for the paper's MPI clusters. See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro.data import get_dataset
    from repro.core import rc_sfista, solve_reference
    from repro.core.stopping import StoppingCriterion

    ds = get_dataset("covtype")
    problem = ds.problem()
    ref = solve_reference(problem, tol=1e-8)
    result = rc_sfista(
        problem, k=4, S=2, b=0.01, iters_per_epoch=200,
        stopping=StoppingCriterion(tol=0.01, fstar=ref.meta["fstar"]),
    )
    print(result.summary())
"""

from repro import core, data, distsim, obs, perf, runtime, sparse, utils
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "core",
    "data",
    "distsim",
    "obs",
    "perf",
    "runtime",
    "sparse",
    "utils",
    "ReproError",
    "__version__",
]
