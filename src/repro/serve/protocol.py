"""Wire protocol of the solve service: requests, job states, error mapping.

Everything that crosses the HTTP boundary is defined here so the server,
the client and the tests share one source of truth. The protocol is plain
JSON — no schema library, just explicit validation that raises
:class:`~repro.exceptions.ValidationError` with a message the server maps
to a 400 response.

A submitted job names its problem *by spec*, not by shipping matrices:
either a registry dataset (``{"dataset": "covtype", "size": "tiny"}``) or
a deterministic synthetic generator call (``{"synthetic": {"d": ..,
"m": .., "density": .., "seed": ..}}``). Either form may add an
objective: ``"loss"`` (one of :data:`~repro.core.model.LOSSES`, default
``"squared"``) and ``"penalty"`` (a spec string like ``"l1"`` or
``"elastic_net:l2=0.5"``, default ``"l1"``). Specs are canonicalised and
fingerprinted (:func:`problem_fingerprint`) — two requests naming the same
spec share one cached problem instance, its memoized CSC twin, its Gram
workspace and its warm-start ladder, while requests differing only in
loss or penalty never collide (docs/SERVING.md).

Failure mapping (the table in docs/SERVING.md):

====================================  ======  =========  ===========
exception                             status  retryable  retry-after
====================================  ======  =========  ===========
ValidationError / FormatError / ...   400     no         —
QueueFullError                        429     yes        yes
WorkerFailureError (pool healed)      503     yes        yes
other FaultError                      503     yes        yes
ConvergenceError (carries .partial)   500     yes        yes
any other exception                   500     no         —
====================================  ======  =========  ===========
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.model import canonical_penalty_spec, make_loss
from repro.data.datasets import DATASETS
from repro.exceptions import (
    ConvergenceError,
    FaultError,
    ReproError,
    ValidationError,
    WorkerFailureError,
)

__all__ = [
    "JOB_STATES",
    "SERVE_SOLVERS",
    "QueueFullError",
    "SubmitRequest",
    "canonical_problem_spec",
    "problem_fingerprint",
    "error_payload",
    "result_payload",
]

#: Lifecycle of a job. ``queued`` → ``running`` → one of the terminal
#: states ``done`` / ``failed`` / ``cancelled``.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Solvers a job may request. The serial solvers accept warm starts
#: (``w0``); the runtime solvers execute on any RuntimeConfig backend and
#: still benefit from the cached problem + workspaces.
SERVE_SOLVERS = ("fista", "ista", "sfista_dist", "rc_sfista_dist", "rc_sfista_spmd")

_SYNTHETIC_KEYS = {"d", "m", "density", "support_fraction", "noise", "seed"}
_SYNTHETIC_DEFAULTS = {
    "density": 1.0,
    "support_fraction": 0.2,
    "noise": 0.05,
    "seed": 0,
}


class QueueFullError(ReproError, RuntimeError):
    """The bounded job queue rejected a submission (HTTP 429)."""

    def __init__(self, message: str, *, retry_after: float = 0.5) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _canonical_objective(spec: Mapping[str, Any]) -> tuple[str, str]:
    """Validate and normalise the optional ``loss``/``penalty`` spec keys.

    Unknown names raise :class:`~repro.exceptions.ValidationError` — the
    model layer's messages list the allowed values, and the server maps
    the exception to a 400 response.
    """
    loss = spec.get("loss", "squared")
    if not isinstance(loss, str):
        raise ValidationError(f"problem 'loss' must be a string, got {loss!r}")
    make_loss(loss)  # raises with the allowed values on an unknown name
    penalty = spec.get("penalty", "l1")
    if not isinstance(penalty, str):
        raise ValidationError(f"problem 'penalty' must be a string, got {penalty!r}")
    return loss, canonical_penalty_spec(penalty)


def canonical_problem_spec(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalise a problem spec to its canonical dict form.

    The canonical form is what gets fingerprinted, so every optional key
    is resolved to an explicit value here — two ways of writing the same
    problem collapse to one cache entry, and the ``loss``/``penalty``
    keys are always present so distinct objectives never share one.
    """
    if not isinstance(spec, Mapping):
        raise ValidationError(f"problem spec must be an object, got {type(spec).__name__}")
    has_dataset = "dataset" in spec
    has_synth = "synthetic" in spec
    if has_dataset == has_synth:
        raise ValidationError(
            "problem spec needs exactly one of 'dataset' or 'synthetic'"
        )
    loss, penalty = _canonical_objective(spec)
    if has_dataset:
        name = spec["dataset"]
        if name not in DATASETS:
            raise ValidationError(
                f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
            )
        size = spec.get("size", "tiny")
        if size not in ("tiny", "scaled"):
            raise ValidationError(f"dataset size must be 'tiny' or 'scaled', got {size!r}")
        extra = set(spec) - {"dataset", "size", "loss", "penalty"}
        if extra:
            raise ValidationError(f"unknown problem spec keys {sorted(extra)}")
        return {
            "dataset": str(name), "size": str(size),
            "loss": loss, "penalty": penalty,
        }
    synth = spec["synthetic"]
    if not isinstance(synth, Mapping):
        raise ValidationError("'synthetic' must be an object of generator parameters")
    extra = set(spec) - {"synthetic", "loss", "penalty"}
    if extra:
        raise ValidationError(f"unknown problem spec keys {sorted(extra)}")
    unknown = set(synth) - _SYNTHETIC_KEYS
    if unknown:
        raise ValidationError(f"unknown synthetic parameters {sorted(unknown)}")
    for required in ("d", "m"):
        if required not in synth:
            raise ValidationError(f"synthetic spec needs {required!r}")
        if not isinstance(synth[required], int) or synth[required] < 1:
            raise ValidationError(f"synthetic {required!r} must be a positive integer")
    out: dict[str, Any] = {"d": synth["d"], "m": synth["m"]}
    for key, default in _SYNTHETIC_DEFAULTS.items():
        value = synth.get(key, default)
        if key == "seed":
            if not isinstance(value, int):
                raise ValidationError("synthetic seed must be an integer")
        else:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValidationError(f"synthetic {key!r} must be numeric")
            value = float(value)
        out[key] = value
    return {"synthetic": out, "loss": loss, "penalty": penalty}


def problem_fingerprint(spec: Mapping[str, Any]) -> str:
    """Stable fingerprint of a canonical problem spec (cache key)."""
    canonical = canonical_problem_spec(spec)
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SubmitRequest:
    """One validated solve request.

    ``problem`` is the canonical spec; ``lam`` of ``None`` means "the
    problem's default λ". ``rel_change_tol`` feeds a
    :class:`~repro.core.stopping.StoppingCriterion` so warm-started solves
    can stop after a few refinement iterations instead of burning the full
    budget. ``runtime`` carries the execution knobs for the distributed
    solvers (``nranks``, ``backend``, ``comm``, ...).
    """

    problem: dict[str, Any]
    tenant: str = "default"
    solver: str = "fista"
    lam: float | None = None
    max_iter: int = 500
    rel_change_tol: float | None = 1e-9
    warm_start: bool = True
    include_report: bool = False
    runtime: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.solver not in SERVE_SOLVERS:
            raise ValidationError(
                f"solver must be one of {SERVE_SOLVERS}, got {self.solver!r}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValidationError("tenant must be a non-empty string")
        if self.lam is not None and (not np.isfinite(self.lam) or self.lam <= 0):
            raise ValidationError(f"lam must be finite and > 0, got {self.lam}")
        if self.max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1, got {self.max_iter}")
        if self.rel_change_tol is not None and self.rel_change_tol <= 0:
            raise ValidationError(
                f"rel_change_tol must be > 0 or null, got {self.rel_change_tol}"
            )

    @property
    def fingerprint(self) -> str:
        return problem_fingerprint(self.problem)

    @property
    def batch_key(self) -> tuple:
        """Jobs with equal batch keys may run as one multi-start batch."""
        return (
            self.fingerprint,
            self.solver,
            self.max_iter,
            self.rel_change_tol,
            tuple(sorted(self.runtime.items())),
        )

    @classmethod
    def from_json(cls, payload: Any) -> "SubmitRequest":
        if not isinstance(payload, Mapping):
            raise ValidationError("request body must be a JSON object")
        known = {
            "problem", "tenant", "solver", "lam", "max_iter",
            "rel_change_tol", "warm_start", "include_report", "runtime",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(f"unknown request fields {sorted(unknown)}")
        if "problem" not in payload:
            raise ValidationError("request needs a 'problem' spec")
        runtime = payload.get("runtime", {})
        if not isinstance(runtime, Mapping):
            raise ValidationError("'runtime' must be an object")
        kwargs: dict[str, Any] = {
            "problem": canonical_problem_spec(payload["problem"]),
            "runtime": dict(runtime),
        }
        for key in ("tenant", "solver"):
            if key in payload:
                kwargs[key] = payload[key]
        if payload.get("lam") is not None:
            lam = payload["lam"]
            if isinstance(lam, bool) or not isinstance(lam, (int, float)):
                raise ValidationError("lam must be a number")
            kwargs["lam"] = float(lam)
        if "max_iter" in payload:
            if not isinstance(payload["max_iter"], int):
                raise ValidationError("max_iter must be an integer")
            kwargs["max_iter"] = payload["max_iter"]
        if "rel_change_tol" in payload:
            tol = payload["rel_change_tol"]
            if tol is not None:
                if isinstance(tol, bool) or not isinstance(tol, (int, float)):
                    raise ValidationError("rel_change_tol must be a number or null")
                tol = float(tol)
            kwargs["rel_change_tol"] = tol
        for flag in ("warm_start", "include_report"):
            if flag in payload:
                if not isinstance(payload[flag], bool):
                    raise ValidationError(f"{flag} must be a boolean")
                kwargs[flag] = payload[flag]
        return cls(**kwargs)

    def to_json(self) -> dict[str, Any]:
        return {
            "problem": self.problem,
            "tenant": self.tenant,
            "solver": self.solver,
            "lam": self.lam,
            "max_iter": self.max_iter,
            "rel_change_tol": self.rel_change_tol,
            "warm_start": self.warm_start,
            "include_report": self.include_report,
            "runtime": dict(self.runtime),
        }


def result_payload(result: Any, *, lam: float, warm_kind: str) -> dict[str, Any]:
    """JSON-safe summary of a :class:`~repro.core.results.SolveResult`."""
    w = np.asarray(result.w, dtype=np.float64)
    payload: dict[str, Any] = {
        "lam": float(lam),
        "warm_start": warm_kind,
        "converged": bool(result.converged),
        "n_iterations": int(result.n_iterations),
        "n_comm_rounds": int(result.n_comm_rounds),
        "nnz": int(np.sum(w != 0)),
        "w": [float(v) for v in w],
    }
    if len(result.history):
        payload["final_objective"] = float(result.history.objectives[-1])
    if result.cost is not None:
        payload["sim_time"] = float(result.cost.get("elapsed", 0.0))
    return payload


def error_payload(exc: BaseException) -> tuple[int, dict[str, Any]]:
    """Map an exception to ``(http_status, structured error body)``.

    Retryable failures carry ``retry_after`` (seconds) which the server
    also surfaces as a ``Retry-After`` header; a ``ConvergenceError`` with
    a partial result additionally ships the best iterate reached so
    clients can degrade gracefully instead of losing the run.
    """
    body: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": False,
    }
    if isinstance(exc, QueueFullError):
        body.update(retryable=True, retry_after=exc.retry_after)
        return 429, body
    if isinstance(exc, WorkerFailureError):
        body.update(
            retryable=True,
            retry_after=1.0,
            ranks=list(exc.ranks),
            action=exc.action,
            new_nranks=exc.new_nranks,
        )
        return 503, body
    if isinstance(exc, FaultError):
        body.update(retryable=True, retry_after=1.0)
        return 503, body
    if isinstance(exc, ConvergenceError):
        body.update(retryable=True, retry_after=1.0)
        partial = exc.partial
        if partial is not None:
            w = np.asarray(partial.w, dtype=np.float64)
            body["partial"] = {
                "n_iterations": int(partial.n_iterations),
                "nnz": int(np.sum(w != 0)),
                "w": [float(v) for v in w],
            }
            if len(partial.history):
                body["partial"]["final_objective"] = float(partial.history.objectives[-1])
        return 500, body
    if isinstance(exc, ValidationError) or isinstance(exc, ReproError):
        return 400, body
    return 500, body
