"""Blocking JSON-HTTP client for the solve service.

Used by ``python -m repro submit``, the load-generator benchmark and the
end-to-end tests. Stdlib only (:mod:`http.client`); one connection per
request because the server answers ``Connection: close``.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any
from urllib.parse import urlsplit

from repro.exceptions import ReproError, ValidationError

__all__ = ["ServeClient", "ServeHTTPError"]


class ServeHTTPError(ReproError, RuntimeError):
    """A non-2xx answer from the service, with the decoded error payload."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retryable = bool(error.get("retryable"))
        self.retry_after = error.get("retry_after")


class ServeClient:
    """Talk to a running :class:`~repro.serve.server.ServeApp`."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValidationError(f"only http:// URLs are supported, got {base_url!r}")
        host = parts.netloc or parts.path
        if not host:
            raise ValidationError(f"cannot parse host from {base_url!r}")
        self.host = host
        self.timeout = timeout

    # -- transport ------------------------------------------------------- #
    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        conn = http.client.HTTPConnection(self.host, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, decoded, dict(response.getheaders())
        finally:
            conn.close()

    def _checked(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        status, payload, _headers = self._request(method, path, body)
        if status >= 400:
            raise ServeHTTPError(status, payload)
        return payload

    # -- API ------------------------------------------------------------- #
    def submit(self, request: dict[str, Any]) -> str:
        """Submit a job; returns its id."""
        return self._checked("POST", "/v1/jobs", request)["id"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._checked("POST", f"/v1/jobs/{job_id}/cancel")

    def metrics(self) -> dict[str, Any]:
        return self._checked("GET", "/v1/metrics")

    def healthz(self) -> dict[str, Any]:
        return self._checked("GET", "/v1/healthz")

    def result(self, job_id: str, *, wait: bool = True, timeout: float = 60.0) -> dict[str, Any]:
        """Fetch a job's result, polling (honouring Retry-After) when *wait*.

        Raises :class:`ServeHTTPError` for failed/cancelled jobs and
        :class:`TimeoutError` when *wait* expires with the job unfinished.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, payload, headers = self._request("GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                return payload
            if status == 202 and wait:
                if time.monotonic() >= deadline:
                    raise TimeoutError(f"job {job_id} unfinished after {timeout:g}s")
                time.sleep(float(headers.get("Retry-After", 0.05)))
                continue
            if status == 202:
                return payload
            raise ServeHTTPError(status, payload)
