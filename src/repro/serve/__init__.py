"""Solver-as-a-service: async job server with warm-start caching.

The production-scale entry point (ROADMAP item 2): instead of one CLI
invocation per solve, ``repro.serve`` exposes submit/status/result/cancel
over JSON-HTTP with a bounded multi-tenant fair queue, batching of
same-shape requests into multi-start runs, and a cross-request
:class:`SolveCache` that turns repeated-λ and λ-grid traffic into warm
starts. See docs/SERVING.md; start one with ``python -m repro serve``.
"""

from repro.serve.cache import CacheEntry, SolveCache
from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.jobs import FairQueue, Job
from repro.serve.protocol import (
    JOB_STATES,
    SERVE_SOLVERS,
    QueueFullError,
    SubmitRequest,
    canonical_problem_spec,
    error_payload,
    problem_fingerprint,
    result_payload,
)
from repro.serve.scheduler import Scheduler
from repro.serve.server import ServeApp

__all__ = [
    "CacheEntry",
    "FairQueue",
    "JOB_STATES",
    "Job",
    "QueueFullError",
    "SERVE_SOLVERS",
    "ServeApp",
    "ServeClient",
    "ServeHTTPError",
    "Scheduler",
    "SolveCache",
    "SubmitRequest",
    "canonical_problem_spec",
    "error_payload",
    "problem_fingerprint",
    "result_payload",
]
