"""Minimal asyncio JSON-HTTP front end for the scheduler.

No web framework and no ``http.server`` — requests are parsed directly
off :func:`asyncio.start_server` streams. The surface is deliberately
tiny (docs/SERVING.md):

====== ============================  ===========================================
method path                          meaning
====== ============================  ===========================================
POST   ``/v1/jobs``                  submit a solve job → 202 + job id
GET    ``/v1/jobs/<id>``             job status
GET    ``/v1/jobs/<id>/result``      result (202 + Retry-After while pending)
POST   ``/v1/jobs/<id>/cancel``      cancel mid-queue or mid-solve
GET    ``/v1/metrics``               metrics snapshot + cache/queue stats
GET    ``/v1/healthz``               liveness + queue depth
====== ============================  ===========================================

Failed jobs answer their stored HTTP status with the structured error
payload produced by :func:`~repro.serve.protocol.error_payload`;
transport-level problems (bad JSON, oversized bodies, unknown routes) are
mapped here.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import QueueFullError, SubmitRequest, error_payload
from repro.serve.scheduler import Scheduler

__all__ = ["ServeApp"]

_MAX_BODY = 8 * 1024 * 1024  # 8 MiB: specs are small; nobody ships matrices
_MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _response(
    status: int, payload: dict[str, Any], *, retry_after: float | None = None
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if retry_after is not None:
        headers.append(f"Retry-After: {retry_after:g}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes]:
    request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
    if not request_line:
        raise _HttpError(400, "empty request")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "too many headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        body = await reader.readexactly(length)
    return method, target, headers, body


class ServeApp:
    """The solve service: a scheduler plus its HTTP listener."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Scheduler | None = None,
        **scheduler_kwargs: Any,
    ) -> None:
        if scheduler is not None and scheduler_kwargs:
            raise ValidationError(
                "pass either a prebuilt scheduler or scheduler kwargs, not both"
            )
        self.scheduler = scheduler if scheduler is not None else Scheduler(**scheduler_kwargs)
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def metrics(self) -> MetricsRegistry:
        return self.scheduler.metrics

    # -- lifecycle ------------------------------------------------------- #
    async def start(self) -> tuple[str, int]:
        """Start scheduler + listener; returns the bound ``(host, port)``."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- request handling ------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, _headers, body = await _read_request(reader)
                response = await self._route(method, target, body)
            except _HttpError as exc:
                response = _response(
                    exc.status, {"error": {"type": "HttpError", "message": str(exc)}}
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 — never kill the listener
                status, payload = error_payload(exc)
                response = _response(status, {"error": payload})
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(self, method: str, target: str, body: bytes) -> bytes:
        path = target.split("?", 1)[0].rstrip("/")
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if path == "/v1/metrics" and method == "GET":
            return _response(200, self._metrics_payload())
        if path == "/v1/healthz" and method == "GET":
            return _response(
                200, {"ok": True, "queue_depth": len(self.scheduler.queue)}
            )
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result") and method == "GET":
                return await self._result(rest[: -len("/result")])
            if rest.endswith("/cancel") and method == "POST":
                return self._cancel(rest[: -len("/cancel")])
            if "/" not in rest and method == "GET":
                return self._status(rest)
        if path in ("/v1/jobs", "/v1/metrics", "/v1/healthz") or path.startswith("/v1/jobs/"):
            raise _HttpError(405, f"method {method} not allowed on {path}")
        raise _HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        request = SubmitRequest.from_json(payload)
        try:
            job = self.scheduler.submit(request)
        except QueueFullError as exc:
            status, error = error_payload(exc)
            return _response(status, {"error": error}, retry_after=exc.retry_after)
        return _response(202, job.status_payload())

    def _job_or_404(self, job_id: str):
        job = self.scheduler.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return job

    def _status(self, job_id: str) -> bytes:
        return _response(200, self._job_or_404(job_id).status_payload())

    async def _result(self, job_id: str) -> bytes:
        job = self._job_or_404(job_id)
        if not job.finished:
            return _response(202, job.status_payload(), retry_after=0.05)
        if job.state == "done":
            payload = job.status_payload()
            payload["result"] = job.result
            if job.report is not None:
                payload["report"] = job.report
            return _response(200, payload)
        if job.state == "cancelled":
            payload = job.status_payload()
            payload["error"] = {
                "type": "Cancelled",
                "message": "job was cancelled",
                "retryable": False,
            }
            return _response(409, payload)
        payload = job.status_payload()
        payload["error"] = job.error or {
            "type": "Unknown", "message": "job failed", "retryable": False,
        }
        retry_after = (job.error or {}).get("retry_after")
        return _response(job.error_status or 500, payload, retry_after=retry_after)

    def _cancel(self, job_id: str) -> bytes:
        job = self.scheduler.cancel(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return _response(200, job.status_payload())

    def _metrics_payload(self) -> dict[str, Any]:
        return {
            "metrics": self.metrics.snapshot(),
            "stats": self.scheduler.stats(),
        }
