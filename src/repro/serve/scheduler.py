"""Job scheduler: fair dispatch, batching, solve execution, accounting.

The scheduler owns the :class:`~repro.serve.jobs.FairQueue`, the
:class:`~repro.serve.cache.SolveCache` and a thread-pool of solver
workers. Its event-loop side (submit/cancel/dispatch/accounting) is
single-threaded by construction; only ``_run_batch`` — the actual solves —
executes on worker threads, and worker threads touch nothing but the jobs
handed to them and the (internally locked) cache.

**Batching.** When a job is dispatched, every queued job with the same
``batch_key`` (problem fingerprint, solver, budget, runtime knobs) is
pulled into the same *multi-start run*: one worker, one cache entry, one
problem instance, one Gram workspace — each start solved in submission
order. Each start is the identical solver call it would have been solo,
so batched results are bit-identical to individually submitted solves
(pinned by tests/test_serve/test_scheduler.py).

**Cancellation.** A queued job is removed from the queue and reported
``cancelled`` immediately. A running job cannot be interrupted mid-solve
(the solvers are pure compute); its ``cancel_requested`` flag makes the
worker drop the result — and skip not-yet-started members of its batch —
so the job still terminates as ``cancelled``.

**Failure mapping.** Solver exceptions become structured error payloads
via :func:`~repro.serve.protocol.error_payload`; the job terminates as
``failed`` and carries the HTTP status the server should answer with.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping

from repro.core.fista import fista, ista
from repro.core.rc_sfista_dist import rc_sfista_distributed
from repro.core.rc_sfista_spmd import rc_sfista_spmd
from repro.core.sfista_dist import sfista_distributed
from repro.core.stopping import StoppingCriterion
from repro.distsim.compress import parse_compression_spec
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryRecorder
from repro.runtime import RuntimeConfig
from repro.serve.cache import CacheEntry, SolveCache
from repro.serve.jobs import FairQueue, Job
from repro.serve.protocol import SubmitRequest, error_payload, result_payload

__all__ = ["Scheduler"]

#: Solvers that accept a ``w0`` warm start.
_WARM_SOLVERS = ("fista", "ista")

#: Keys a request's ``runtime`` object may carry. ``nranks``/``epochs``/
#: ``iters_per_epoch``/``k``/``S``/``b``/``seed`` parameterise the solver
#: call; the rest build the :class:`~repro.runtime.RuntimeConfig`.
_SOLVER_KEYS = {"nranks", "epochs", "iters_per_epoch", "k", "S", "b", "seed"}
_CONFIG_KEYS = {
    "backend", "comm", "comm_topology", "comm_compress", "machine",
    "mp_timeout", "mp_failure_policy",
    "checkpoint_every", "on_nan", "max_recoveries", "adaptive_restart",
}

#: Latency histogram buckets: sub-millisecond warm refinements up to
#: multi-second cold distributed solves.
_LATENCY_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0)


def _split_runtime(runtime: Mapping[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
    unknown = set(runtime) - _SOLVER_KEYS - _CONFIG_KEYS
    if unknown:
        raise ValidationError(
            f"unknown runtime keys {sorted(unknown)}; solver keys: "
            f"{sorted(_SOLVER_KEYS)}, config keys: {sorted(_CONFIG_KEYS)}"
        )
    solver = {k: runtime[k] for k in _SOLVER_KEYS if k in runtime}
    config = {k: runtime[k] for k in _CONFIG_KEYS if k in runtime}
    return solver, config


class Scheduler:
    """Asyncio-driven job scheduler over a thread pool of solver workers."""

    def __init__(
        self,
        *,
        queue_limit: int = 256,
        tenant_weights: Mapping[str, int] | None = None,
        max_workers: int = 1,
        batch_max: int = 8,
        cache_problems: int = 16,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        if batch_max < 1:
            raise ValidationError(f"batch_max must be >= 1, got {batch_max}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue = FairQueue(queue_limit, weights=tenant_weights)
        self.cache = SolveCache(cache_problems, metrics=self.metrics)
        self.batch_max = int(batch_max)
        self.max_workers = int(max_workers)
        self._jobs: dict[str, Job] = {}
        self._events: dict[str, asyncio.Event] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._task: asyncio.Task | None = None
        self._cond: asyncio.Condition | None = None
        self._inflight = 0
        self._stopping = False
        # Instruments are created eagerly so /metrics shows the full
        # families (with zero values) from the first scrape.
        self._requests = self.metrics.counter(
            "serve_requests_total", help="jobs by tenant and terminal state"
        )
        self._depth_gauge = self.metrics.gauge(
            "serve_queue_depth", help="queued jobs (total and per tenant)"
        )
        self._latency = self.metrics.histogram(
            "serve_latency_seconds",
            help="request latency by phase (queue/solve/total) and warm-start kind",
            buckets=_LATENCY_BUCKETS,
        )
        self._batched = self.metrics.counter(
            "serve_batched_jobs_total",
            help="jobs executed as followers of a multi-start batch",
        )

    # -- lifecycle ------------------------------------------------------- #
    async def start(self) -> None:
        if self._task is not None:
            raise ValidationError("scheduler already started")
        self._stopping = False
        self._cond = asyncio.Condition()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-serve"
        )
        self._task = asyncio.create_task(self._run(), name="repro-serve-scheduler")

    async def stop(self) -> None:
        if self._task is None:
            return
        assert self._cond is not None
        async with self._cond:
            self._stopping = True
            # Everything still queued dies as cancelled, not silently.
            while (job := self.queue.pop()) is not None:
                self._finish_cancelled(job)
            self._cond.notify_all()
        await self._task
        self._task = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._update_depth()

    # -- submission / inspection ---------------------------------------- #
    def submit(self, request: SubmitRequest) -> Job:
        """Enqueue a request (raises :class:`QueueFullError` when full)."""
        if self._cond is None or self._stopping:
            raise ValidationError("scheduler is not running")
        job = Job(request=request)
        self.queue.push(job)  # may raise QueueFullError — nothing recorded then
        self._jobs[job.id] = job
        self._events[job.id] = asyncio.Event()
        self._update_depth()
        self._kick()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    async def wait(self, job: Job, timeout: float | None = None) -> bool:
        """Wait until *job* reaches a terminal state. True on completion."""
        event = self._events.get(job.id)
        if event is None or job.finished:
            return job.finished
        try:
            await asyncio.wait_for(event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job: mid-queue removes it, mid-solve drops its result."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if job.finished:
            return job
        removed = self.queue.remove(job_id)
        if removed is not None:
            self._finish_cancelled(removed)
            self._update_depth()
        else:
            job.cancel_requested = True
        return job

    def stats(self) -> dict[str, Any]:
        return {
            "queue_depth": len(self.queue),
            "inflight_batches": self._inflight,
            "jobs": len(self._jobs),
            "cache": self.cache.stats(),
        }

    # -- internals ------------------------------------------------------- #
    def _kick(self) -> None:
        async def _notify() -> None:
            assert self._cond is not None
            async with self._cond:
                self._cond.notify_all()

        asyncio.ensure_future(_notify())

    def _update_depth(self) -> None:
        self._depth_gauge.set(float(len(self.queue)))
        for tenant in self.queue.tenants():
            self._depth_gauge.set(float(self.queue.depth(tenant)), tenant=tenant)

    def _finish_cancelled(self, job: Job) -> None:
        job.set_state("cancelled")
        job.finished_at = time.monotonic()
        self._requests.inc(tenant=job.request.tenant, state="cancelled")
        event = self._events.get(job.id)
        if event is not None:
            event.set()

    async def _run(self) -> None:
        assert self._cond is not None
        loop = asyncio.get_running_loop()
        while True:
            async with self._cond:
                await self._cond.wait_for(
                    lambda: self._stopping
                    or (len(self.queue) > 0 and self._inflight < self.max_workers)
                )
                if self._stopping:
                    # Wait for inflight batches to drain before exiting.
                    await self._cond.wait_for(lambda: self._inflight == 0)
                    return
                head = self.queue.pop()
                assert head is not None
                key = head.request.batch_key
                followers = self.queue.take_matching(
                    lambda j: j.request.batch_key == key, self.batch_max - 1
                )
                self._inflight += 1
            batch = [head, *followers]
            if followers:
                self._batched.inc(float(len(followers)))
            now = time.monotonic()
            for job in batch:
                job.set_state("running")
                job.started_at = now
            self._update_depth()
            future = loop.run_in_executor(self._pool, self._run_batch, batch)
            future.add_done_callback(
                lambda fut, batch=batch: asyncio.ensure_future(
                    self._on_batch_done(batch, fut)
                )
            )

    async def _on_batch_done(self, batch: list[Job], future: Any) -> None:
        assert self._cond is not None
        exc = future.exception()
        for job in batch:
            if exc is not None and not job.finished:
                # Harness bug, not a per-job solver failure: fail the batch.
                status, body = error_payload(exc)
                job.error, job.error_status = body, status
                job.set_state("failed")
                if job.finished_at is None:
                    job.finished_at = time.monotonic()
            self._account(job)
            event = self._events.get(job.id)
            if event is not None:
                event.set()
        async with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    def _account(self, job: Job) -> None:
        """Terminal-state accounting; runs on the event loop only."""
        self._requests.inc(tenant=job.request.tenant, state=job.state)
        warm = (job.result or {}).get("warm_start", "cold")
        self._latency.observe(job.queue_seconds, phase="queue", warm=warm)
        if job.solve_seconds is not None:
            self._latency.observe(job.solve_seconds, phase="solve", warm=warm)
            self._latency.observe(
                job.queue_seconds + job.solve_seconds, phase="total", warm=warm
            )

    # -- worker-thread side ---------------------------------------------- #
    def _run_batch(self, batch: list[Job]) -> None:
        entry: CacheEntry | None = None
        for job in batch:
            if job.cancel_requested:
                job.set_state("cancelled")
                job.finished_at = time.monotonic()
                continue
            try:
                if entry is None:
                    entry = self.cache.entry_for(job.request.problem)
                self._run_one(job, entry)
            except Exception as exc:  # noqa: BLE001 — mapped to the wire
                status, body = error_payload(exc)
                job.error, job.error_status = body, status
                job.set_state("failed")
            finally:
                if job.finished_at is None:
                    job.finished_at = time.monotonic()

    def _run_one(self, job: Job, entry: CacheEntry) -> None:
        req = job.request
        lam = float(req.lam) if req.lam is not None else entry.default_lam
        problem = entry.problem_at(lam)
        solver_kw, config_kw = _split_runtime(req.runtime)
        # Lossy compression changes the iterates a solve converges to, so
        # each canonical comm_compress spec warm-starts from (and records
        # into) its own ladder — never the lossless one.
        variant = parse_compression_spec(
            config_kw.get("comm_compress", "none")
        ).spec
        warm_enabled = req.warm_start and req.solver in _WARM_SOLVERS
        w0, warm_kind = self.cache.warm_start(
            entry, lam, enabled=warm_enabled, variant=variant
        )
        stopping = (
            StoppingCriterion(rel_change_tol=req.rel_change_tol)
            if req.rel_change_tol is not None
            else None
        )
        recorder = TelemetryRecorder() if req.include_report else None

        if req.solver in _WARM_SOLVERS:
            solve = fista if req.solver == "fista" else ista
            if recorder is not None:
                recorder.on_run_start(
                    req.solver, {"lam": lam, "max_iter": req.max_iter, "warm": warm_kind}
                )
            result = solve(
                problem, w0=w0, max_iter=req.max_iter, stopping=stopping
            )
            if recorder is not None:
                recorder.on_run_end(cost=result.cost, meta={"converged": result.converged})
        else:
            result = self._run_distributed(
                req, problem, stopping, solver_kw, config_kw, recorder
            )

        if job.cancel_requested:
            job.set_state("cancelled")
            return
        self.cache.record(entry, lam, result.w, variant=variant)
        job.result = result_payload(result, lam=lam, warm_kind=warm_kind)
        if recorder is not None:
            job.report = recorder.report().to_dict()
        job.set_state("done")

    def _run_distributed(
        self,
        req: SubmitRequest,
        problem: Any,
        stopping: StoppingCriterion | None,
        solver_kw: dict[str, Any],
        config_kw: dict[str, Any],
        recorder: TelemetryRecorder | None,
    ) -> Any:
        nranks = int(solver_kw.get("nranks", 4))
        epochs = int(solver_kw.get("epochs", 1))
        iters = int(solver_kw.get("iters_per_epoch", 100))
        seed = solver_kw.get("seed", 0)
        b = float(solver_kw.get("b", 0.01))
        cfg = RuntimeConfig(telemetry=recorder, **config_kw)
        if req.solver == "sfista_dist":
            return sfista_distributed(
                problem, nranks, b=b, seed=seed, epochs=epochs,
                iters_per_epoch=iters, stopping=stopping, runtime=cfg,
            )
        if req.solver == "rc_sfista_dist":
            return rc_sfista_distributed(
                problem, nranks,
                k=int(solver_kw.get("k", 1)), S=int(solver_kw.get("S", 1)),
                b=b, seed=seed, epochs=epochs, iters_per_epoch=iters,
                stopping=stopping, runtime=cfg,
            )
        # rc_sfista_spmd: fixed-budget rank program, no stopping criterion.
        return rc_sfista_spmd(
            problem, nranks, k=int(solver_kw.get("k", 1)), b=b, seed=seed,
            n_iterations=epochs * iters, runtime=cfg,
        )
