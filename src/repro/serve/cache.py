"""Cross-request solve cache: problems, workspaces and warm-start ladders.

The serving workload (ROADMAP item 2) is dominated by *repeats*: λ-grids
swept over one problem, the same problem re-submitted by many tenants,
refinement solves at a λ already seen. :class:`SolveCache` turns those
from cold solves into warm ones by keeping, per problem fingerprint:

* the constructed problem itself (`X`, `y`) — building a registry dataset
  or synthetic matrix is often more expensive than a warm solve;
* the matrix's **memoized CSC twin** (primed once, reused by every Gram
  evaluation — the 80× kernel of PR 5);
* a reusable :class:`~repro.sparse.ops.GramWorkspace` sized to the
  problem, handed to runtime solvers so batched requests share scratch;
* a :class:`~repro.core.warmstart.WarmStartLadder` — the same
  implementation the regularization-path sweep uses — holding the best
  iterate per λ.

Entries are LRU-evicted beyond ``max_problems``. All bookkeeping is
guarded by one lock so scheduler worker threads can share the cache.

Metrics (when a registry is attached): ``serve_cache_requests_total``
labelled by ``kind`` ∈ {cold, exact, path} plus ``disabled`` for requests
that opted out, ``serve_cache_problem_{hits,misses}_total`` for the
problem-construction cache, and ``serve_cache_evictions_total``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.model import ERMObjective, make_loss
from repro.core.objectives import L1LeastSquares
from repro.core.path import lambda_max
from repro.core.warmstart import WarmStartLadder
from repro.data.datasets import get_dataset
from repro.data.synthetic import make_regression
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import canonical_problem_spec, problem_fingerprint
from repro.sparse.ops import GramWorkspace

__all__ = ["CacheEntry", "SolveCache"]


@dataclass
class CacheEntry:
    """Everything reusable across requests for one problem fingerprint."""

    fingerprint: str
    spec: dict[str, Any]
    problem: ERMObjective  # at the entry's default λ
    default_lam: float
    ladder: WarmStartLadder
    workspace: GramWorkspace
    #: Cached problem views at previously requested λs (same X/y objects,
    #: so the CSC memo and any Lipschitz estimate stay shared).
    _at_lam: dict[float, ERMObjective] = field(default_factory=dict)
    #: Warm-start ladders for lossy comm-compression variants. Compressed
    #: solves converge to *different* iterates than uncompressed ones, so
    #: each canonical ``comm_compress`` spec gets its own ladder — a
    #: "topk:frac=0.1" result never warm-starts a "none" request or vice
    #: versa. The default ``ladder`` field is the "none" variant.
    _ladders: dict[str, WarmStartLadder] = field(default_factory=dict)

    def ladder_for(self, variant: str) -> WarmStartLadder:
        if variant == "none":
            return self.ladder
        lad = self._ladders.get(variant)
        if lad is None:
            lad = self._ladders[variant] = WarmStartLadder(self.ladder.d)
        return lad

    def problem_at(self, lam: float) -> ERMObjective:
        lam = float(lam)
        prob = self._at_lam.get(lam)
        if prob is None:
            base = self.problem
            if lam == base.lam:
                prob = base
            elif type(base) is L1LeastSquares:
                prob = L1LeastSquares(base.X, base.y, lam)
            else:
                prob = ERMObjective(
                    base.X,
                    base.y,
                    loss=base.loss,
                    penalty=base.penalty.at_lam(lam, base.d),
                    lam=lam,
                )
            self._at_lam[lam] = prob
        return prob


def _build_problem(spec: Mapping[str, Any]) -> ERMObjective:
    loss = spec.get("loss", "squared")
    penalty = spec.get("penalty", "l1")
    legacy = loss == "squared" and penalty == "l1"
    if "dataset" in spec:
        ds = get_dataset(spec["dataset"], size=spec["size"])
        base = ds.problem()
        if legacy:
            return base
        X, y, lam = base.X, base.y, base.lam
    else:
        params = spec["synthetic"]
        X, y, _w_true = make_regression(
            params["d"],
            params["m"],
            density=params["density"],
            support_fraction=params["support_fraction"],
            noise=params["noise"],
            rng=params["seed"],
        )
        lam = 0.1 * lambda_max(L1LeastSquares(X, y, 1.0))
        if lam <= 0:
            raise ValidationError("synthetic problem has zero lambda_max")
        if legacy:
            return L1LeastSquares(X, y, lam)
    model_loss = make_loss(loss)
    if model_loss.classification:
        # Regression targets become ±1 labels by sign (ties go to +1) so
        # the same dataset/synthetic specs serve classification losses.
        y = np.where(np.asarray(y) >= 0, 1.0, -1.0)
    return ERMObjective(X, y, loss=model_loss, penalty=penalty, lam=lam)


class SolveCache:
    """LRU cache of :class:`CacheEntry` keyed on the problem fingerprint."""

    def __init__(
        self,
        max_problems: int = 16,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_problems < 1:
            raise ValidationError(f"max_problems must be >= 1, got {max_problems}")
        self.max_problems = int(max_problems)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics
        self._warm_requests = 0
        self._warm_hits = 0

    # -- instrumentation ------------------------------------------------- #
    def _count(self, name: str, help: str, **labels: Any) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, help=help).inc(**labels)

    # -- problems -------------------------------------------------------- #
    def entry_for(self, spec: Mapping[str, Any]) -> CacheEntry:
        """The cache entry for *spec*, building problem + workspace on miss."""
        canonical = canonical_problem_spec(spec)
        fp = problem_fingerprint(canonical)
        with self._lock:
            entry = self._entries.get(fp)
            if entry is not None:
                self._entries.move_to_end(fp)
                self._count(
                    "serve_cache_problem_hits_total",
                    "requests that found their problem already constructed",
                )
                return entry
        # Build outside the lock — dataset generation can take a while and
        # concurrent misses for *different* problems should not serialize.
        problem = _build_problem(canonical)
        if hasattr(problem.X, "to_csc"):
            problem.X.to_csc()  # prime the memoized CSC twin once, up front
        entry = CacheEntry(
            fingerprint=fp,
            spec=canonical,
            problem=problem,
            default_lam=float(problem.lam),
            ladder=WarmStartLadder(problem.d),
            workspace=GramWorkspace(problem.d),
        )
        with self._lock:
            existing = self._entries.get(fp)
            if existing is not None:  # lost a build race; keep the first
                self._entries.move_to_end(fp)
                return existing
            self._entries[fp] = entry
            self._count(
                "serve_cache_problem_misses_total",
                "requests that had to construct their problem",
            )
            while len(self._entries) > self.max_problems:
                self._entries.popitem(last=False)
                self._count(
                    "serve_cache_evictions_total",
                    "LRU evictions of whole problem entries",
                )
        return entry

    # -- warm starts ----------------------------------------------------- #
    def warm_start(
        self, entry: CacheEntry, lam: float, *, enabled: bool = True,
        variant: str = "none",
    ) -> tuple[np.ndarray, str]:
        """Starting iterate for a solve at *lam*: ``(w0, kind)``.

        ``kind`` is ``"exact"`` (λ seen before), ``"path"`` (neighbouring
        λ's iterate) or ``"cold"``; opting out via *enabled* always
        returns a cold start and is counted separately. *variant* selects
        the comm-compression ladder (``"none"`` = the lossless default) —
        compressed and uncompressed iterates never cross-pollinate.
        """
        with self._lock:
            if not enabled:
                self._count(
                    "serve_cache_requests_total",
                    "warm-start lookups by outcome kind",
                    kind="disabled",
                )
                return np.zeros(entry.ladder.d), "cold"
            w0, kind = entry.ladder_for(variant).suggest(lam)
            self._warm_requests += 1
            if kind != "cold":
                self._warm_hits += 1
            self._count(
                "serve_cache_requests_total",
                "warm-start lookups by outcome kind",
                kind=kind,
            )
            return w0, kind

    def record(
        self, entry: CacheEntry, lam: float, w: np.ndarray, *, variant: str = "none"
    ) -> None:
        """Store a finished iterate for future warm starts (per variant)."""
        with self._lock:
            entry.ladder_for(variant).record(lam, w)

    # -- introspection --------------------------------------------------- #
    def stats(self) -> dict[str, Any]:
        with self._lock:
            requests = self._warm_requests
            hits = self._warm_hits
            return {
                "problems": len(self._entries),
                "warm_requests": requests,
                "warm_hits": hits,
                "hit_rate": (hits / requests) if requests else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
