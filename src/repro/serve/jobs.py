"""Jobs and the bounded multi-tenant fair queue.

The queue is plain data — no locks, no asyncio — because every mutation
happens on the server's event loop; only the solve itself leaves the loop
(scheduler → executor thread). That keeps the scheduling policy trivially
deterministic and testable.

Scheduling policy: **weighted round-robin across tenants, FIFO within a
tenant.** Tenants take turns in sorted-name order; a tenant with weight
``k`` drains up to ``k`` jobs per turn. Consequences the tests pin down:

* no tenant starves — any tenant with queued work is served within one
  full cycle, i.e. at most ``sum(weights of backlogged tenants)`` pops;
* a tenant flooding the queue cannot crowd out the others beyond its
  weight share (it only competes with itself);
* a single-tenant queue degenerates to plain FIFO.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.exceptions import ValidationError
from repro.serve.protocol import JOB_STATES, QueueFullError, SubmitRequest

__all__ = ["Job", "FairQueue"]

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One submitted request and everything the server knows about it."""

    request: SubmitRequest
    id: str = field(default_factory=lambda: f"job-{next(_job_ids)}")
    state: str = "queued"
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: Set when a cancel arrives while the job is already solving; the
    #: scheduler drops the result and reports ``cancelled``.
    cancel_requested: bool = False
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    error_status: int | None = None
    report: dict[str, Any] | None = None

    def set_state(self, state: str) -> None:
        if state not in JOB_STATES:
            raise ValidationError(f"unknown job state {state!r}")
        self.state = state

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @property
    def queue_seconds(self) -> float:
        start = self.started_at if self.started_at is not None else time.monotonic()
        return max(0.0, start - self.submitted_at)

    @property
    def solve_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.started_at)

    def status_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "tenant": self.request.tenant,
            "solver": self.request.solver,
        }
        if self.finished:
            payload["queue_seconds"] = self.queue_seconds
            if self.solve_seconds is not None:
                payload["solve_seconds"] = self.solve_seconds
        return payload


class FairQueue:
    """Bounded job queue with weighted round-robin tenant scheduling."""

    def __init__(
        self,
        limit: int = 256,
        *,
        weights: Mapping[str, int] | None = None,
        default_weight: int = 1,
    ) -> None:
        if limit < 1:
            raise ValidationError(f"queue limit must be >= 1, got {limit}")
        if default_weight < 1:
            raise ValidationError(f"default_weight must be >= 1, got {default_weight}")
        for tenant, weight in (weights or {}).items():
            if not isinstance(weight, int) or weight < 1:
                raise ValidationError(
                    f"tenant {tenant!r} weight must be a positive integer, got {weight!r}"
                )
        self.limit = int(limit)
        self.default_weight = int(default_weight)
        self._weights = dict(weights or {})
        self._pending: dict[str, deque[Job]] = {}
        self._size = 0
        # Round-robin cursor: the tenant currently being served and how
        # many more jobs it may drain this turn.
        self._current: str | None = None
        self._credit = 0

    def weight(self, tenant: str) -> int:
        return self._weights.get(tenant, self.default_weight)

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str | None = None) -> int:
        if tenant is None:
            return self._size
        queue = self._pending.get(tenant)
        return len(queue) if queue else 0

    def tenants(self) -> tuple[str, ...]:
        """Tenants with queued work, sorted (the round-robin order)."""
        return tuple(sorted(t for t, q in self._pending.items() if q))

    def push(self, job: Job) -> None:
        if self._size >= self.limit:
            raise QueueFullError(
                f"queue is full ({self.limit} jobs); retry shortly",
            )
        self._pending.setdefault(job.request.tenant, deque()).append(job)
        self._size += 1

    def _advance(self, backlogged: tuple[str, ...]) -> None:
        """Move the cursor to the next backlogged tenant and refill credit."""
        nxt = None
        if self._current is not None:
            for tenant in backlogged:
                if tenant > self._current:
                    nxt = tenant
                    break
        if nxt is None:
            nxt = backlogged[0]
        self._current = nxt
        self._credit = self.weight(nxt)

    def pop(self) -> Job | None:
        """Next job under weighted round-robin, or ``None`` when empty."""
        backlogged = self.tenants()
        if not backlogged:
            return None
        if (
            self._current is None
            or self._credit <= 0
            or not self._pending.get(self._current)
        ):
            self._advance(backlogged)
        assert self._current is not None
        job = self._pending[self._current].popleft()
        self._credit -= 1
        self._size -= 1
        if not self._pending[self._current]:
            del self._pending[self._current]
        return job

    def take_matching(
        self, predicate: Callable[[Job], bool], max_jobs: int
    ) -> list[Job]:
        """Remove and return up to *max_jobs* queued jobs matching *predicate*.

        Used for batching: after popping a head job, the scheduler pulls
        queued same-shape jobs (any tenant — batching only ever
        *accelerates* a job, so fairness is not violated) into the same
        multi-start run, preserving FIFO order within each tenant.
        """
        if max_jobs <= 0:
            return []
        taken: list[Job] = []
        for tenant in self.tenants():
            queue = self._pending[tenant]
            kept: deque[Job] = deque()
            while queue:
                job = queue.popleft()
                if len(taken) < max_jobs and predicate(job):
                    taken.append(job)
                else:
                    kept.append(job)
            if kept:
                self._pending[tenant] = kept
            else:
                del self._pending[tenant]
        self._size -= len(taken)
        return taken

    def remove(self, job_id: str) -> Job | None:
        """Remove a queued job by id (cancellation mid-queue)."""
        for tenant, queue in list(self._pending.items()):
            for job in queue:
                if job.id == job_id:
                    queue.remove(job)
                    self._size -= 1
                    if not queue:
                        del self._pending[tenant]
                    return job
        return None

    def __iter__(self) -> Iterator[Job]:
        for tenant in self.tenants():
            yield from self._pending[tenant]
