"""Shared utilities: validation, RNG handling, timing, logging."""

from repro.utils.validation import (
    check_array,
    check_matrix,
    check_vector,
    require,
    check_positive,
    check_in_range,
    check_probability,
)
from repro.utils.rng import (
    as_generator,
    spawn_generators,
    sample_indices,
    sample_indices_weighted,
    sampling_matrix,
    SeedSequenceStream,
)
from repro.utils.timer import Timer, WallClock
from repro.utils.logging import get_logger

__all__ = [
    "check_array",
    "check_matrix",
    "check_vector",
    "require",
    "check_positive",
    "check_in_range",
    "check_probability",
    "as_generator",
    "spawn_generators",
    "sample_indices",
    "sample_indices_weighted",
    "sampling_matrix",
    "SeedSequenceStream",
    "Timer",
    "WallClock",
    "get_logger",
]
