"""Seeded randomness helpers.

The paper's experiments rely on *reproducible* sampling: RC-SFISTA with
overlap parameter ``k`` must draw exactly the same index sets as SFISTA when
both start from the same seed (§5.2, "random sampling is fixed by using the
same random generator seed"). Everything here is deterministic given a seed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_probability

__all__ = [
    "as_generator",
    "spawn_generators",
    "sample_indices",
    "sample_indices_weighted",
    "sampling_matrix",
    "minibatch_size",
    "SeedSequenceStream",
]

RandomState = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (non-deterministic), an ``int``, a ``SeedSequence``, or
    an existing ``Generator`` (returned unchanged, so callers can thread one
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, n: int) -> list[np.random.Generator]:
    """Split *seed* into *n* statistically independent generators."""
    if n < 0:
        raise ValidationError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]  # type: ignore[union-attr]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def minibatch_size(m: int, b: float) -> int:
    """The paper's mini-batch size ``m̄ = ⌊b·m⌋`` clamped to ``[1, m]``."""
    check_probability(b, "sampling rate b")
    if m <= 0:
        raise ValidationError(f"number of samples m must be positive, got {m}")
    return max(1, min(m, int(np.floor(b * m))))


def sample_indices(rng: np.random.Generator, m: int, mbar: int, *, replace: bool = True) -> np.ndarray:
    """Draw the index set ``I_n`` of ``mbar`` sample indices from ``[0, m)``.

    The paper samples uniformly at random (Alg. 5 line 4); with-replacement
    is the variant matching the variance analysis of Eq. (9) and is the
    default. ``replace=False`` gives subsampling without replacement.
    """
    if mbar <= 0 or m <= 0:
        raise ValidationError(f"need positive sizes, got m={m}, mbar={mbar}")
    if replace:
        # With replacement any mbar >= 1 is valid (a bootstrap sample).
        return rng.integers(0, m, size=mbar, dtype=np.int64)
    if mbar > m:
        raise ValidationError(f"mini-batch size must lie in (0, {m}] without replacement")
    return rng.choice(m, size=mbar, replace=False).astype(np.int64)


def sample_indices_weighted(
    rng: np.random.Generator, probabilities: np.ndarray, mbar: int
) -> np.ndarray:
    """Draw ``mbar`` indices i.i.d. from *probabilities* (with replacement).

    Used by importance sampling: the unbiased sampled-Hessian estimator
    then reweights each draw by ``1/(m̄ p_i)``.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise ValidationError("probabilities must be a non-empty 1-D array")
    if np.any(probabilities < 0):
        raise ValidationError("probabilities must be non-negative")
    total = probabilities.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValidationError("probabilities must have positive finite mass")
    if mbar <= 0:
        raise ValidationError(f"mbar must be positive, got {mbar}")
    return rng.choice(probabilities.size, size=mbar, p=probabilities / total).astype(np.int64)


def sampling_matrix(indices: np.ndarray, m: int) -> np.ndarray:
    """Materialize the paper's sampling matrix ``I_n = [e_i1 | ... | e_imbar]``.

    Returns the dense ``m × m̄`` selection matrix. Only used in tests and
    didactic examples — the solvers use fancy indexing, which is the same
    linear operator applied implicitly.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValidationError("indices must be one-dimensional")
    if indices.size and (indices.min() < 0 or indices.max() >= m):
        raise ValidationError(f"indices out of range for m={m}")
    mat = np.zeros((m, indices.size), dtype=np.float64)
    mat[indices, np.arange(indices.size)] = 1.0
    return mat


class SeedSequenceStream:
    """An endless stream of child seeds derived from one root seed.

    Used by the distributed solvers to give every (iteration, purpose) pair
    its own generator while remaining reproducible and independent of the
    number of ranks: all ranks derive the same stream, so replicated
    sampling decisions agree without communication — exactly how the paper
    initializes "all processors with the same seed" (§5.5).
    """

    def __init__(self, seed: RandomState = 0) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        elif isinstance(seed, np.random.Generator):
            self._seq = seed.bit_generator.seed_seq  # type: ignore[assignment]
        else:
            self._seq = np.random.SeedSequence(seed)
        self._count = 0

    def next_generator(self) -> np.random.Generator:
        """Return the next generator in the stream."""
        (child,) = self._seq.spawn(1)
        self._count += 1
        return np.random.default_rng(child)

    def generators(self) -> Iterator[np.random.Generator]:
        """Yield generators forever."""
        while True:
            yield self.next_generator()

    @property
    def count(self) -> int:
        """Number of generators handed out so far."""
        return self._count
