"""Argument validation helpers.

These are deliberately small and allocation-free on the happy path: hot
solver loops call them once at entry, never per iteration.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.exceptions import ShapeError, ValidationError

__all__ = [
    "require",
    "check_array",
    "check_matrix",
    "check_vector",
    "check_positive",
    "check_in_range",
    "check_probability",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def check_array(
    x: Any,
    name: str = "array",
    *,
    ndim: int | None = None,
    dtype: np.dtype | type = np.float64,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce *x* to a contiguous ndarray of *dtype* and validate its rank.

    Parameters
    ----------
    x:
        Anything ``np.asarray`` accepts.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any rank.
    dtype:
        Target dtype; the input is converted (copying only when needed).
    allow_empty:
        When ``False``, reject arrays with zero elements.
    """
    try:
        arr = np.ascontiguousarray(x, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not convertible to {np.dtype(dtype)}: {exc}") from exc
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name} must have ndim={ndim}, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def check_matrix(x: Any, name: str = "matrix", **kwargs: Any) -> np.ndarray:
    """Validate a rank-2 array (see :func:`check_array`)."""
    return check_array(x, name, ndim=2, **kwargs)


def check_vector(x: Any, name: str = "vector", **kwargs: Any) -> np.ndarray:
    """Validate a rank-1 array (see :func:`check_array`)."""
    return check_array(x, name, ndim=1, **kwargs)


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate a (strictly) positive scalar and return it as ``float``."""
    v = float(value)
    if not np.isfinite(v):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if strict and v <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate that ``low (<|<=) value (<|<=) high`` and return ``float(value)``."""
    v = float(value)
    lo_ok = (v >= low) if low_inclusive else (v > low)
    hi_ok = (v <= high) if high_inclusive else (v < high)
    if not (lo_ok and hi_ok and np.isfinite(v)):
        lb = "[" if low_inclusive else "("
        rb = "]" if high_inclusive else ")"
        raise ValidationError(f"{name} must lie in {lb}{low}, {high}{rb}, got {value!r}")
    return v


def check_probability(value: float, name: str = "probability") -> float:
    """Validate a sampling rate in ``(0, 1]`` (the paper's ``b``)."""
    return check_in_range(value, name, 0.0, 1.0, low_inclusive=False)


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise unless two sequences have equal length."""
    if len(a) != len(b):
        raise ShapeError(f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have equal length")
