"""JSON (de)serialization for solver results.

Long sweeps want durable artifacts: every :class:`SolveResult` (including
its convergence history and cost summary) round-trips through plain JSON,
so experiment runs can be cached, diffed and post-processed without
pickling concerns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.results import History, SolveResult
from repro.exceptions import FormatError

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]

_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays inside meta to JSON-safe values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def result_to_dict(result: SolveResult) -> dict[str, Any]:
    """Plain-dict form of *result* (JSON-safe, schema-versioned)."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "w": result.w.tolist(),
        "converged": bool(result.converged),
        "n_iterations": int(result.n_iterations),
        "n_comm_rounds": int(result.n_comm_rounds),
        "cost": _jsonable(result.cost) if result.cost is not None else None,
        "meta": _jsonable(result.meta),
        "history": {
            "iterations": list(result.history.iterations),
            "objectives": list(result.history.objectives),
            "rel_errors": list(result.history.rel_errors),
            "sim_times": list(result.history.sim_times),
            "comm_rounds": list(result.history.comm_rounds),
        },
    }


def result_from_dict(payload: dict[str, Any]) -> SolveResult:
    """Inverse of :func:`result_to_dict`."""
    try:
        version = payload["schema_version"]
        if version != _SCHEMA_VERSION:
            raise FormatError(f"unsupported result schema version {version}")
        hist_data = payload["history"]
        history = History(
            iterations=[int(v) for v in hist_data["iterations"]],
            objectives=[float(v) for v in hist_data["objectives"]],
            rel_errors=[float(v) for v in hist_data["rel_errors"]],
            sim_times=[float(v) for v in hist_data["sim_times"]],
            comm_rounds=[int(v) for v in hist_data["comm_rounds"]],
        )
        return SolveResult(
            w=np.asarray(payload["w"], dtype=np.float64),
            converged=bool(payload["converged"]),
            n_iterations=int(payload["n_iterations"]),
            n_comm_rounds=int(payload["n_comm_rounds"]),
            cost=payload.get("cost"),
            meta=payload.get("meta", {}),
            history=history,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed result payload: {exc}") from exc


def save_result(path: str | Path, result: SolveResult) -> None:
    """Write *result* to *path* as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result)), encoding="utf-8")


def load_result(path: str | Path) -> SolveResult:
    """Read a result written by :func:`save_result`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise FormatError(f"{path} is not valid JSON: {exc}") from exc
    return result_from_dict(payload)
