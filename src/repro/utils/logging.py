"""Thin logging facade.

We use stdlib :mod:`logging` with a package-level namespace so applications
embedding the library control verbosity the usual way
(``logging.getLogger("repro").setLevel(...)``). The library itself never
configures handlers.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger (optionally a dotted child *name*)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
