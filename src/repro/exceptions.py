"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` from misuse of the
Python API itself, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "ConvergenceError",
    "CommunicatorError",
    "DeadlockError",
    "PartitionError",
    "DatasetError",
    "FormatError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong value, range, or dtype)."""


class ShapeError(ValidationError):
    """An array argument has an incompatible shape."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance."""


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the simulated communicator (bad rank, mismatched buffers...)."""


class DeadlockError(CommunicatorError):
    """The SPMD engine detected that no rank can make progress."""


class PartitionError(ReproError, ValueError):
    """A data partitioning request is infeasible or inconsistent."""


class DatasetError(ReproError, ValueError):
    """A dataset could not be generated or loaded."""


class FormatError(ReproError, ValueError):
    """A file could not be parsed (e.g. malformed LIBSVM text)."""
