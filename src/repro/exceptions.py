"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` from misuse of the
Python API itself, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "ConvergenceError",
    "CommunicatorError",
    "DeadlockError",
    "PartitionError",
    "DatasetError",
    "FormatError",
    "FaultError",
    "RankFailureError",
    "WorkerFailureError",
    "CommTimeoutError",
    "NumericalFaultError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong value, range, or dtype)."""


class ShapeError(ValidationError):
    """An array argument has an incompatible shape."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance.

    When the raising solver can produce one, ``partial`` carries the best
    :class:`~repro.core.results.SolveResult` reached before giving up
    (iterate, history, counters) so callers can degrade gracefully instead
    of losing the whole run. ``None`` when no partial state was available.
    """

    def __init__(self, message: str, *, partial: object | None = None) -> None:
        super().__init__(message)
        self.partial = partial


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the simulated communicator (bad rank, mismatched buffers...)."""


class DeadlockError(CommunicatorError):
    """The SPMD engine detected that no rank can make progress."""


class PartitionError(ReproError, ValueError):
    """A data partitioning request is infeasible or inconsistent."""


class DatasetError(ReproError, ValueError):
    """A dataset could not be generated or loaded."""


class FormatError(ReproError, ValueError):
    """A file could not be parsed (e.g. malformed LIBSVM text)."""


class FaultError(ReproError, RuntimeError):
    """An injected or detected fault could not be tolerated.

    Base class for everything the fault-injection layer
    (:mod:`repro.distsim.faults`) and the resilient solver runtime raise
    when detection succeeds but recovery is impossible or exhausted.
    """


class RankFailureError(FaultError):
    """A simulated rank crashed (permanently) and the run could not proceed."""


class WorkerFailureError(RankFailureError):
    """A *real* worker process died or hung, and the backend already healed it.

    Raised by :class:`~repro.runtime.mpbackend.MultiprocessingBackend`
    after it has physically recovered the pool (respawned the dead ranks,
    or shrunk it to the survivors) so that
    :class:`~repro.runtime.driver.ResilientLoop` only has to rewind solver
    state and replay — no simulated-injector healing applies.

    ``ranks`` names the failed ranks; ``action`` is ``"respawn"`` or
    ``"shrink"``; ``new_nranks`` is the post-shrink pool size (``None``
    when the pool size is unchanged, i.e. under respawn).
    """

    def __init__(
        self,
        message: str,
        *,
        ranks: tuple[int, ...] = (),
        action: str = "respawn",
        new_nranks: int | None = None,
    ) -> None:
        super().__init__(message)
        self.ranks = tuple(ranks)
        self.action = action
        self.new_nranks = new_nranks


class CommTimeoutError(FaultError):
    """A recv/collective deadline on the simulated clock expired."""


class NumericalFaultError(FaultError):
    """NaN/Inf screening caught corrupted numerics and the policy was to raise."""
