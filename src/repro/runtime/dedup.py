"""Replicated-work deduplication for simulated SPMD execution.

After an allreduce, every simulated rank holds bit-identical inputs and
performs the *same* dense update (Gram solve, prox step, momentum,
objective evaluation). On a real machine that work is parallel; in the
simulator it serializes on the host, so P ranks pay P× wall-clock for
one rank's math. :class:`ReplicatedCache` computes the shared value once
per collective epoch and fans out read-only views to the remaining
ranks — host wall-clock becomes O(1) in P while simulated flop charges
(applied per rank by the engine, not here) are untouched.

Correctness rests on determinism: the cached value is only reused within
one collective epoch (all ranks provably hold the same inputs between
two collectives) and the escape hatch ``REPRO_NO_DEDUP=1`` (or
``RuntimeConfig(dedup=False)``) disables reuse entirely for A/B
bisection. Bit-identity of dedup on/off is pinned by the cross-backend
test matrix.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

import numpy as np

from repro.distsim.zerocopy import dedup_enabled, freeze

__all__ = ["ReplicatedCache"]


def _freeze_value(value: Any) -> Any:
    """Freeze ndarrays (including inside tuples) so shared values are safe."""
    if isinstance(value, np.ndarray):
        return freeze(value)
    if isinstance(value, tuple):
        return tuple(_freeze_value(v) for v in value)
    return value


class ReplicatedCache:
    """Epoch-keyed memo for work that is bit-identical across ranks.

    ``get(epoch, tag, compute)`` returns the cached value for ``tag`` if
    one was stored in the same ``epoch`` (typically the engine's
    ``coll_epoch``), else calls ``compute()`` once and stores the result.
    ndarray results are frozen read-only: every rank shares one buffer,
    and a rank that needs a private mutable copy must take one explicitly
    (:func:`repro.distsim.zerocopy.writable`).

    ``hits``/``misses`` feed the ``runtime_dedup_hits``/``_misses``
    counters surfaced in run metadata and ``repro.obs`` metrics.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        self.enabled = dedup_enabled(enabled)
        self._epoch: Hashable = None
        self._values: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, epoch: Hashable, tag: Hashable, compute: Callable[[], Any]) -> Any:
        if not self.enabled:
            return compute()
        if epoch != self._epoch:
            self._epoch = epoch
            self._values.clear()
        if tag in self._values:
            self.hits += 1
            return self._values[tag]
        value = _freeze_value(compute())
        self._values[tag] = value
        self.misses += 1
        return value

    def reset(self) -> None:
        """Drop all cached values and zero the counters."""
        self._epoch = None
        self._values.clear()
        self.hits = 0
        self.misses = 0
