"""WorkerSupervisor: process lifecycle for the self-healing mp backend.

The :class:`~repro.runtime.mpbackend.MultiprocessingBackend` used to own
its worker processes directly, and the only thing it could do about a
dead or hung rank was tear everything down. This module factors the
process-lifecycle half of that backend into a supervisor that can also
*recover*: it spawns ranks, monitors them via heartbeats and exit-code
reaping, SIGKILLs hung ones, respawns dead ones in place, and renumbers
the survivors when the pool shrinks.

Responsibilities are split along the process boundary:

* **Supervisor (this module)** — spawn/respawn/reap/kill/renumber worker
  processes, the sequence-numbered command envelope, heartbeats, and the
  ``atexit`` zombie safety net. It knows nothing about shared memory or
  numerics.
* **Backend (:mod:`repro.runtime.mpbackend`)** — the worker *program*
  (shared-memory collectives), segment lifecycle, cost charging, chaos
  injection and failure policies.

Envelope protocol
-----------------
Every command is ``(seq, op, *args)`` and every ack ``(seq, status,
payload)`` with a monotonically increasing ``seq`` issued by
:meth:`WorkerSupervisor.next_seq`. After a failure mid-collective the
surviving workers may still emit acks for commands issued *before* the
recovery; the sequence numbers let the host discard those stale acks and
resynchronise the survivors without restarting the whole pool
(:meth:`recv_ack` drops any ack whose seq predates the one awaited).

Replacement-worker hygiene
--------------------------
Respawned workers go through exactly the same bootstrap as the original
pool (one code path, :func:`_bootstrap_worker`): BLAS thread pools are
pinned to a single thread per worker (the solvers parallelise across
ranks; P workers × T BLAS threads oversubscribes the host) and the
process registers in the supervisor's ``atexit`` kill list so no path —
initial spawn, respawn, or shrink — can leak a zombie process.
"""

from __future__ import annotations

import atexit
import os
import time
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import ValidationError

__all__ = ["WorkerStatus", "WorkerSupervisor"]

# BLAS/threading pools pinned in every worker bootstrap. ``setdefault``:
# an explicit operator override (e.g. benchmarking the oversubscribed
# regime) wins over the supervisor's default.
_PIN_ENV = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

# Every live supervisor, for the atexit zombie sweep. A WeakSet so a
# collected backend cannot pin its supervisor (its __del__ closes first).
_LIVE_SUPERVISORS: "weakref.WeakSet[WorkerSupervisor]" = weakref.WeakSet()


def _kill_leaked_workers() -> None:  # pragma: no cover - exit hook
    for sup in list(_LIVE_SUPERVISORS):
        try:
            sup.shutdown(graceful=False)
        except Exception:
            pass


atexit.register(_kill_leaked_workers)


def _bootstrap_worker(
    worker_main: Callable[..., None],
    rank: int,
    nranks: int,
    conn,
    unregister_shm: bool,
    generation: int,
    pin_blas: bool,
) -> None:
    """The one entry point every worker — original or replacement — runs.

    Pinning must happen here rather than at the spawn site so the respawn
    path cannot drift from the initial-pool path (the satellite bug this
    guards against: a replacement worker spawned without the single-thread
    BLAS pin silently oversubscribes the host after the first recovery).
    """
    if pin_blas:
        for var in _PIN_ENV:
            os.environ.setdefault(var, "1")
    worker_main(rank, nranks, conn, unregister_shm, generation)


@dataclass(frozen=True)
class WorkerStatus:
    """One rank's health as seen by :meth:`WorkerSupervisor.heartbeat`."""

    rank: int
    pid: int | None
    alive: bool
    exitcode: int | None
    generation: int
    responsive: bool

    @property
    def healthy(self) -> bool:
        return self.alive and self.responsive


class _Handle:
    """Mutable bookkeeping for one supervised rank slot."""

    __slots__ = ("rank", "proc", "conn", "generation")

    def __init__(self, rank: int, proc, conn, generation: int) -> None:
        self.rank = rank
        self.proc = proc
        self.conn = conn
        self.generation = generation


class WorkerSupervisor:
    """Spawn, monitor, respawn and renumber a pool of rank processes.

    Parameters
    ----------
    worker_main:
        The worker program, called as ``worker_main(rank, nranks, conn,
        unregister_shm, generation)`` inside the child process. Must be
        picklable (module-level) so the pool also works under ``spawn``.
    nranks:
        Initial pool size.
    ctx:
        A ``multiprocessing`` context (the backend picks fork/spawn and
        pre-starts the resource tracker under fork).
    unregister_shm:
        Forwarded to the worker (True under ``spawn`` — see
        ``mpbackend._attach`` for the bpo-39959 story).
    pin_blas:
        Pin the BLAS/threading pools of every worker to one thread
        (default). Applied in the shared bootstrap so replacements are
        pinned identically to the original pool.
    """

    def __init__(
        self,
        worker_main: Callable[..., None],
        nranks: int,
        *,
        ctx,
        unregister_shm: bool,
        name_prefix: str = "repro-mp-worker",
        pin_blas: bool = True,
    ) -> None:
        if nranks < 1:
            raise ValidationError(f"nranks must be >= 1, got {nranks}")
        self._worker_main = worker_main
        self._ctx = ctx
        self._unregister_shm = unregister_shm
        self._name_prefix = name_prefix
        self._pin_blas = pin_blas
        self._seq = 0
        self._shutdown = False
        self.respawn_count = 0
        self._handles: list[_Handle] = []
        for rank in range(nranks):
            self._handles.append(self._spawn(rank, 0, nranks))
        _LIVE_SUPERVISORS.add(self)

    # ------------------------------------------------------------------ #
    # pool shape
    # ------------------------------------------------------------------ #
    @property
    def nranks(self) -> int:
        return len(self._handles)

    @property
    def pids(self) -> list[int | None]:
        return [h.proc.pid for h in self._handles]

    @property
    def generations(self) -> list[int]:
        """Respawn generation per rank slot (0 = original worker)."""
        return [h.generation for h in self._handles]

    def pid(self, rank: int) -> int | None:
        return self._handles[rank].proc.pid

    def is_alive(self, rank: int) -> bool:
        return self._handles[rank].proc.is_alive()

    # ------------------------------------------------------------------ #
    # envelope protocol
    # ------------------------------------------------------------------ #
    def next_seq(self) -> int:
        """A fresh envelope sequence number (monotone for the pool's life)."""
        self._seq += 1
        return self._seq

    def send(self, rank: int, seq: int, op: str, *args: Any) -> bool:
        """Send ``(seq, op, *args)`` to *rank*; False when the pipe is broken."""
        try:
            self._handles[rank].conn.send((seq, op) + args)
            return True
        except (BrokenPipeError, OSError):
            return False

    def recv_ack(self, rank: int, seq: int, deadline: float) -> tuple[str, Any] | None:
        """Await the ack for envelope *seq* from *rank* until *deadline*.

        Returns ``(status, payload)``, or None on timeout / a dead pipe.
        Acks with an older seq are stale leftovers from before a recovery
        and are discarded; a *newer* seq would mean the host skipped an
        ack it was owed, which is a protocol bug worth failing loudly on.
        """
        conn = self._handles[rank].conn
        while True:
            # Even past the deadline, drain what already arrived: when one
            # hung rank eats a shared deadline (heartbeat sweeps), the
            # other ranks' acks are sitting in their pipes and must still
            # classify them as responsive.
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if not conn.poll(remaining):
                    return None
                got_seq, status, payload = conn.recv()
            except (EOFError, OSError):
                return None
            if got_seq == seq:
                return status, payload
            if got_seq > seq:
                raise ValidationError(
                    f"worker {rank} acked seq {got_seq} while the host awaited "
                    f"{seq} — envelope protocol out of sync"
                )
            # stale ack from before a recovery: drain and keep waiting

    def drain(self, rank: int) -> None:
        """Throw away whatever acks are sitting in *rank*'s pipe."""
        conn = self._handles[rank].conn
        try:
            while conn.poll(0):
                conn.recv()
        except (EOFError, OSError):
            pass

    # ------------------------------------------------------------------ #
    # health monitoring
    # ------------------------------------------------------------------ #
    def reap(self) -> dict[int, int | None]:
        """Exit codes of dead workers, by rank (empty when all alive)."""
        dead: dict[int, int | None] = {}
        for h in self._handles:
            if not h.proc.is_alive():
                dead[h.rank] = h.proc.exitcode
        return dead

    def heartbeat(self, deadline_s: float) -> list[WorkerStatus]:
        """Ping every rank and classify it within *deadline_s* seconds.

        A dead process is reported without being pinged; a live process
        that does not pong within the deadline is *hung* (``alive`` but
        not ``responsive``) — under the respawn/shrink policies the
        backend treats both the same way (a too-slow rank has failed).
        """
        if not (deadline_s > 0):
            raise ValidationError(f"heartbeat deadline must be > 0, got {deadline_s}")
        pending: dict[int, int] = {}
        for h in self._handles:
            if h.proc.is_alive():
                seq = self.next_seq()
                if self.send(h.rank, seq, "ping"):
                    pending[h.rank] = seq
        deadline = time.monotonic() + deadline_s
        statuses = []
        for h in self._handles:
            responsive = False
            if h.rank in pending:
                ack = self.recv_ack(h.rank, pending[h.rank], deadline)
                responsive = ack is not None and ack[0] == "ok"
            statuses.append(
                WorkerStatus(
                    rank=h.rank,
                    pid=h.proc.pid,
                    alive=h.proc.is_alive(),
                    exitcode=h.proc.exitcode,
                    generation=h.generation,
                    responsive=responsive,
                )
            )
        return statuses

    # ------------------------------------------------------------------ #
    # recovery actions
    # ------------------------------------------------------------------ #
    def kill(self, rank: int) -> None:
        """Forcefully terminate *rank* (SIGKILL semantics) and reap it."""
        h = self._handles[rank]
        if h.proc.is_alive():
            h.proc.kill()
        h.proc.join(timeout=5.0)

    def respawn(self, ranks: Sequence[int]) -> None:
        """Replace the workers at *ranks* with fresh processes, in place.

        The dead process is reaped (killed first if it was merely hung),
        its pipe closed, and a replacement spawned through the same
        bootstrap as the original pool — same BLAS pinning, same atexit
        registration, generation bumped. The replacement starts with no
        attached segments; the backend re-attaches before reuse.
        """
        for rank in ranks:
            h = self._handles[rank]
            self.kill(rank)
            try:
                h.conn.close()
            except OSError:  # pragma: no cover
                pass
            self._handles[rank] = self._spawn(rank, h.generation + 1, self.nranks)
            self.respawn_count += 1

    def renumber(self, survivors: Sequence[int]) -> None:
        """Shrink the pool to *survivors* (old rank ids, ascending order).

        Dead slots must already be reaped/killed; their handles are
        discarded here. The surviving handles are renumbered contiguously
        — old rank ``survivors[i]`` becomes new rank ``i`` — matching the
        rank ids the backend rebinds into the workers via ``attach``.
        """
        if not survivors:
            raise ValidationError("cannot renumber to an empty pool")
        if sorted(survivors) != list(survivors):
            raise ValidationError(f"survivors must be ascending, got {survivors}")
        keep = set(survivors)
        for h in self._handles:
            if h.rank not in keep:
                if h.proc.is_alive():  # pragma: no cover - caller kills first
                    h.proc.kill()
                h.proc.join(timeout=5.0)
                try:
                    h.conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._handles = [self._handles[r] for r in survivors]
        for new_rank, h in enumerate(self._handles):
            h.rank = new_rank

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, graceful: bool) -> None:
        """Stop every worker; zombie-free on both paths (idempotent)."""
        if self._shutdown:
            return
        self._shutdown = True
        if graceful:
            for h in self._handles:
                self.send(h.rank, self.next_seq(), "exit")
        for h in self._handles:
            h.proc.join(timeout=1.0 if graceful else 0.2)
            if h.proc.is_alive():
                h.proc.terminate()
                h.proc.join(timeout=1.0)
            if h.proc.is_alive():  # pragma: no cover - terminate ignored
                h.proc.kill()
                h.proc.join(timeout=1.0)
        for h in self._handles:
            try:
                h.conn.close()
            except OSError:  # pragma: no cover
                pass
        _LIVE_SUPERVISORS.discard(self)

    def _spawn(self, rank: int, generation: int, nranks: int) -> _Handle:
        if self._shutdown:
            raise ValidationError("supervisor is shut down; cannot spawn workers")
        host_conn, worker_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_bootstrap_worker,
            args=(
                self._worker_main,
                rank,
                nranks,
                worker_conn,
                self._unregister_shm,
                generation,
                self._pin_blas,
            ),
            daemon=True,
            name=f"{self._name_prefix}-{rank}",
        )
        proc.start()
        worker_conn.close()
        return _Handle(rank, proc, host_conn, generation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for h in self._handles if h.proc.is_alive())
        return (
            f"WorkerSupervisor(nranks={self.nranks}, alive={alive}, "
            f"respawns={self.respawn_count})"
        )
