"""ResilientLoop: the one checkpoint/rollback/replay driver for all solvers.

Before this module existed, every distributed solver carried its own copy
of the same choreography: wrap collectives in a NaN screen, checkpoint at
round boundaries, catch :class:`~repro.exceptions.RankFailureError` /
:class:`~repro.runtime.resilience.RollbackRequested` in a while-loop,
heal, charge recovery traffic, restore state and replay. The copies had
to agree exactly (recovery is *bit-exact*: a recovered run converges to
the fault-free solution) — four hand-synchronised copies of bit-exact
choreography is four chances to drift.

:class:`ResilientLoop` is that choreography, once. A solver builds one
per run, hands it the body as a closure plus ``capture``/``restore``
callbacks for its replayable state, and keeps only its algorithm::

    loop = ResilientLoop(backend, config, solver="rc_sfista_distributed")
    loop.start(params)                      # telemetry on_run_start
    result = loop.run(body, capture=capture, restore=restore)
    return loop.finish(meta=...)            # telemetry on_run_end + meta

The loop also owns iteration telemetry (:meth:`emit`) so records carry a
uniform shape — retries/recoveries/sim_time come from the loop's own
stats and the backend clock, not from per-solver bookkeeping.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.exceptions import (
    ConvergenceError,
    NumericalFaultError,
    RankFailureError,
    WorkerFailureError,
)
from repro.obs.telemetry import IterationRecord, TelemetryCallback
from repro.runtime.backend import ExecutionBackend
from repro.runtime.config import RuntimeConfig
from repro.runtime.resilience import Checkpoint, NumericalGuard, RecoveryStats, RollbackRequested

__all__ = ["ResilientLoop"]


class ResilientLoop:
    """Fault-tolerant execution driver shared by the distributed solvers.

    Owns the numerical guard, the recovery statistics, the communication-
    round counter, the most recent :class:`Checkpoint` and the telemetry
    callback. The solver body stays purely algorithmic and calls back into
    the loop for anything resilience- or observability-flavoured.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        config: RuntimeConfig,
        *,
        solver: str,
    ) -> None:
        self.backend = backend
        self.config = config
        self.solver = solver
        self.guard = NumericalGuard(config.on_nan)
        self.stats = RecoveryStats()
        self.telemetry: TelemetryCallback | None = config.telemetry
        self.comm_rounds = 0
        # Set by the solver once its γ is known; stamped into records.
        self.step_size: float = 0.0
        self._ck: Checkpoint | None = None
        # Compressor state (error-feedback residuals, quantizer RNG call
        # counts) captured alongside the active checkpoint: a rollback
        # replay must re-issue bit-identical compressed collectives.
        self._ck_comm: object = None
        # Optional GramWorkspace the solver installs; finish() reports its
        # reuse counter alongside the backend's dedup hit/miss counts.
        self.workspace = None

    # ------------------------------------------------------------------ #
    # screened collectives
    # ------------------------------------------------------------------ #
    def screened(self, producer: Callable[[], np.ndarray], what: str) -> np.ndarray:
        """Run *producer* with NaN screening and recompute retries.

        Each attempt counts as one communication round (the traffic was
        spent whether or not the result was clean — same accounting the
        hand-wired solvers used). Under ``on_nan="recompute"`` the
        producer is re-issued up to ``max_recoveries`` times; persistent
        corruption escalates to :class:`NumericalFaultError`. Rollback and
        raise policies propagate out of :meth:`NumericalGuard.screen`.
        """
        attempts = self.config.max_recoveries + 1
        for _attempt in range(attempts):
            out = producer()
            self.comm_rounds += 1
            if not self.guard.screen(out, what, self.stats):
                return out
            self.stats.recomputes += 1
        raise NumericalFaultError(
            f"{what} stayed non-finite after {attempts} attempt(s) "
            "(on_nan='recompute')"
        )

    def allreduce(self, contribs: Sequence[np.ndarray], label: str) -> np.ndarray:
        """Screened allreduce: retries re-issue only the collective."""
        return self.screened(
            lambda: self.backend.allreduce(contribs, label=label), label
        )

    def screen_objective(self, obj: float) -> None:
        """Guard a monitored objective; non-finite triggers the policy.

        Under ``"recompute"`` a bad objective still rolls back — there is
        no cheaper producer to re-issue than the rounds that made it.
        """
        if self.guard.enabled and self.guard.screen(obj, "monitored objective", self.stats):
            raise RollbackRequested("monitored objective")

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def start(self, params: dict[str, Any]) -> None:
        if self.telemetry is not None:
            self.telemetry.on_run_start(self.solver, params)

    def emit(
        self,
        *,
        outer: int,
        inner: int,
        objective: float | None,
        phase: str = "inner",
    ) -> None:
        """One uniform iteration record (out of band: never affects cost)."""
        if self.telemetry is None:
            return
        self.telemetry.on_iteration(
            IterationRecord(
                outer=outer,
                inner=inner,
                objective=objective,
                step_size=self.step_size,
                comm_mode=self.config.comm,
                comm_decision=self.backend.last_comm_decision,
                retries=self.stats.recomputes,
                recoveries=self.stats.rollbacks,
                sim_time=self.backend.elapsed,
                phase=phase,
            )
        )

    def finish(self, meta: dict[str, Any]) -> dict[str, Any]:
        """Close out telemetry; returns *meta* enriched with resilience stats.

        Also publishes the host-performance counters (``runtime_dedup_*``,
        ``gram_workspace_reuses``) under ``meta["perf"]`` and into the
        configured metrics registry — how much replicated work the run
        elided. Observational only: values never feed back into costs.
        """
        meta = dict(meta)
        meta.setdefault("resilience", self.stats.as_meta())
        meta.setdefault("perf", self._perf_meta())
        if self.telemetry is not None:
            self.telemetry.on_run_end(
                cost=self.backend.cost_summary(),
                trace=self.backend.trace,
                meta={"solver": self.solver, **meta},
            )
        return meta

    def _perf_meta(self) -> dict[str, int]:
        cache = getattr(self.backend, "replicated", None)
        perf = {
            "runtime_dedup_hits": int(cache.hits) if cache is not None else 0,
            "runtime_dedup_misses": int(cache.misses) if cache is not None else 0,
            "gram_workspace_reuses": (
                int(self.workspace.reuses) if self.workspace is not None else 0
            ),
        }
        registry = self.config.metrics
        if registry is not None:
            for name, value in perf.items():
                if value:
                    registry.counter(
                        name, help="host-side replicated work elided (see docs/PERFORMANCE.md)"
                    ).inc(value)
        return perf

    # ------------------------------------------------------------------ #
    # checkpointing + the recovery loop
    # ------------------------------------------------------------------ #
    @property
    def checkpoint(self) -> Checkpoint | None:
        """The checkpoint a rollback would restore (None → restart from scratch)."""
        return self._ck

    def _comm_snapshot(self) -> object:
        snap = getattr(self.backend, "comm_state_snapshot", None)
        return snap() if snap is not None else None

    def commit_checkpoint(self, ck: Checkpoint) -> None:
        """Charge and promote *ck* to the active recovery point."""
        self.backend.checkpoint(ck.words)
        self._ck = ck
        self._ck_comm = self._comm_snapshot()
        self.stats.checkpoints += 1

    def seed_checkpoint(self, ck: Checkpoint) -> None:
        """Install the free initial checkpoint (no traffic charged)."""
        self._ck = ck
        self._ck_comm = self._comm_snapshot()

    def run(
        self,
        body: Callable[[], Any],
        *,
        capture: Callable[[], Checkpoint] | None = None,
        restore: Callable[[Checkpoint], None] | None = None,
        repartition: Callable[[int, Sequence[int]], float] | None = None,
    ) -> Any:
        """Execute *body* to completion, surviving faults via replay.

        ``capture`` (called once, before the first attempt) provides the
        free initial checkpoint; ``restore`` rewinds the solver's closure
        state to a checkpoint before a replay. Solvers without host-side
        state to rewind (the SPMD rank programs re-derive everything from
        their own checkpoint dict) pass neither, getting a pure re-run.
        ``repartition(new_nranks, lost_ranks)`` rebuilds the solver's
        rank-count-dependent structures (column partition, workspaces,
        per-rank buffers) after an elastic pool shrink and returns the
        number of state words that had to move to new owners — charged as
        recovery traffic.

        Recovery actions, per exception:

        * :class:`WorkerFailureError` — a real worker process died or
          hung, and the mp backend already healed the pool (respawn) or
          shrunk it. The loop books the stats, runs ``repartition`` for a
          shrink (no hook → the shrink cannot be absorbed and the failure
          propagates), restores and replays.
        * :class:`RankFailureError` — heal the failed ranks through the
          backend's injector, charge recovery traffic for the active
          checkpoint, restore, replay. Without an injector (or past
          ``max_recoveries``) the failure propagates.
        * :class:`RollbackRequested` — same restore/replay path minus the
          healing; past ``max_recoveries`` it escalates to
          :class:`NumericalFaultError`.
        * :class:`~repro.exceptions.ConvergenceError` — not recovered, but
          the last checkpointed state is attached as ``.partial`` before
          it propagates, so ``fail_fast`` callers can salvage the iterate.
        """
        if capture is not None:
            self._ck = capture()
            self._ck_comm = self._comm_snapshot()
        recoveries = 0
        while True:
            try:
                return body()
            except ConvergenceError as err:
                if err.partial is None and self._ck is not None:
                    err.partial = self._partial()
                raise
            except WorkerFailureError as err:
                # The backend already healed the pool; the loop's job is
                # accounting, repartitioning (shrink) and the replay.
                recoveries += 1
                if recoveries > self.config.max_recoveries:
                    raise
                self.stats.rank_failures_recovered += 1
                self.stats.healed_ranks.extend(err.ranks)
                self.stats.rollbacks += 1
                if err.action == "shrink":
                    if repartition is None:
                        raise
                    self.stats.shrinks += 1
                    self.stats.final_nranks = err.new_nranks
                    moved = repartition(err.new_nranks, err.ranks)
                    if moved:
                        # Redistributed row blocks travel to new owners.
                        self.backend.recover(float(moved))
                else:
                    # Counted per replaced worker (one recovery round can
                    # respawn several simultaneously-failed ranks).
                    self.stats.respawns += len(err.ranks)
                self._recover(restore)
            except RankFailureError:
                injector = self.backend.injector
                if injector is None:
                    raise
                recoveries += 1
                if recoveries > self.config.max_recoveries:
                    raise
                healed = injector.heal_all()
                self.stats.rank_failures_recovered += 1
                self.stats.healed_ranks.extend(healed)
                self.stats.rollbacks += 1
                self._recover(restore)
            except RollbackRequested as sig:
                recoveries += 1
                if recoveries > self.config.max_recoveries:
                    raise NumericalFaultError(
                        f"non-finite values in {sig.what} persisted after "
                        f"{self.config.max_recoveries} rollback(s)"
                    ) from None
                self.stats.rollbacks += 1
                self._recover(restore)

    def _partial(self) -> dict[str, Any]:
        """Salvageable state for ``ConvergenceError.partial`` (fail-fast).

        The last *checkpointed* iterate — not whatever the torn collective
        left behind — plus enough round metadata to resume or report.
        """
        ck = self._ck
        return {
            "arrays": {k: v.copy() for k, v in ck.arrays.items()},
            "scalars": dict(ck.scalars),
            "comm_rounds": self.comm_rounds,
            "resilience": self.stats.as_meta(),
            "sim_time": self.backend.elapsed,
        }

    def _recover(self, restore: Callable[[Checkpoint], None] | None) -> None:
        if self._ck is not None:
            self.backend.recover(self._ck.words)
            if restore is not None:
                restore(self._ck)
            if self._ck_comm is not None:
                self.backend.comm_state_restore(self._ck_comm)
