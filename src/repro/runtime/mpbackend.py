"""Real-parallelism execution backends: worker processes and BLAS threads.

Every backend in :mod:`repro.runtime.backend` *simulates* its ranks inside
one process — the α-β-γ charges are exact, but the host wall-clock only
benefits from the fast path of docs/PERFORMANCE.md, never from actual
hardware parallelism. This module adds the two backends that run ranks for
real while keeping the simulated cost model as the source of truth:

* :class:`MultiprocessingBackend` (``backend="mp"``) — one persistent
  worker **process** per rank, owned by a
  :class:`~repro.runtime.supervisor.WorkerSupervisor`. Collective
  payloads move through ``multiprocessing.shared_memory`` segments (one
  per rank, zero-copy between processes) and are reduced by the workers
  themselves in the exact pairwise-tournament order of
  :func:`repro.distsim.collectives.allreduce_values`, so results are
  **bit-identical** to every simulated backend. Charged costs come from an
  internal ledger :class:`~repro.distsim.bsp.BSPCluster` driven through
  its charge-only methods — byte-identical cost summaries to a BSP run of
  the same schedule.
* :class:`ThreadPoolBackend` (``backend="threads"``) — a
  :class:`~repro.runtime.backend.BSPBackend` whose :meth:`map_ranks` runs
  the per-rank compute closures on a thread pool. The Gram-dominated
  stages (A+B of Fig. 1) spend their time inside BLAS ``dgemm``/``dsyrk``
  which release the GIL, so on a multi-core host the dominant compute
  phase genuinely runs ``P``-way parallel. Collectives stay on the
  cluster: same numerics, same charges, same fault injection as BSP.

Division of labour (why two backends): Python closures cannot cross a
process boundary, so the mp backend parallelizes the *collectives* (its
``map_ranks`` is the serial fallback), while the threads backend
parallelizes the *per-rank compute* — together they cover both halves of
the paper's compute/communicate loop with real hardware.

Determinism contract
--------------------
``MultiprocessingBackend.allreduce`` reduces with the tournament pairing
``(i, i + s)`` for ``i ≡ 0 (mod 2s)``, ``s = 1, 2, 4, …`` — provably the
same pairing (hence the same floating-point sums) as
``allreduce_values``; the cross-backend conformance matrix in
``tests/test_runtime/test_cross_backend.py`` pins this bit-for-bit.

Robustness contract
-------------------
Every worker round-trip is guarded by a deadline
(:attr:`RuntimeConfig.mp_timeout`, plus :class:`RetryPolicy` backoff
grace when configured). A worker that crashed or hangs mid-collective is
detected within that deadline and handled per
:attr:`RuntimeConfig.mp_failure_policy`:

* ``"fail_fast"`` — tear down and raise
  :class:`~repro.exceptions.ConvergenceError`; the
  :class:`~repro.runtime.driver.ResilientLoop` attaches the last
  checkpointed state as ``.partial`` so callers can salvage work.
* ``"respawn"`` — SIGKILL the hung/dead ranks, spawn replacements
  through the same bootstrap (BLAS pinning, atexit hygiene), re-attach
  the segments and raise
  :class:`~repro.exceptions.WorkerFailureError` so the loop rewinds to
  the last checkpoint and replays — the final iterate is **bit-identical**
  to an unfaulted run (checkpoints capture the RNG stream).
* ``"shrink"`` — drop the failed ranks, renumber the survivors to a
  contiguous P′-rank pool, carry their cost counters into a fresh
  P′-rank ledger (dead ranks' past costs stay in the totals), and raise
  :class:`WorkerFailureError` with ``new_nranks`` so the solver
  deterministically repartitions its columns and resumes from the
  checkpoint on the survivors.

A seeded :class:`~repro.distsim.faults.FaultPlan` drives deterministic
*real-process* chaos: scheduled/random crashes SIGKILL workers, stalls
make workers really sleep, and payload corruption flips shared-memory
contributions before the reduction (docs/RESILIENCE.md). The backend
tears down its processes and **unlinks every shared-memory segment** on
every path — success, fail-fast, respawn, shrink (the lifecycle and chaos
tests assert ``/dev/shm`` stays clean and no zombies remain).
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import resource_tracker as _resource_tracker
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.distsim import sparse_collectives as sc
from repro.distsim.bsp import BSPCluster
from repro.distsim.machine import HierarchicalMachine
from repro.distsim.faults import FaultInjector, RetryPolicy, as_injector
from repro.distsim.trace import Trace
from repro.exceptions import (
    CommunicatorError,
    ConvergenceError,
    ValidationError,
    WorkerFailureError,
)
from repro.runtime.backend import BSPBackend
from repro.runtime.config import FAILURE_POLICIES, RuntimeConfig
from repro.runtime.dedup import ReplicatedCache
from repro.runtime.supervisor import WorkerSupervisor

__all__ = [
    "MultiprocessingBackend",
    "ThreadPoolBackend",
    "tournament_levels",
    "live_segment_names",
]

_SEGMENT_PREFIX = "repro_mp"

# Names of every shared-memory segment this process has created and not yet
# unlinked — the leak-test surface and the atexit safety net.
_LIVE_SEGMENTS: set[str] = set()

# Counter fields carried across a pool shrink: the survivors' accumulated
# costs seed the P′-rank ledger, the dead ranks' accumulate into the
# retired totals so Table-1 numbers still reflect everything that happened.
_COUNTER_FIELDS = (
    "flops",
    "words",
    "messages",
    "sparse_words",
    "saved_words",
    "retry_messages",
    "retry_words",
    "checkpoint_words",
    "compute_time",
    "comm_time",
    "idle_time",
    "clock",
)

_TOTAL_KEYS = {
    "flops_total": "flops",
    "words_total": "words",
    "messages_total": "messages",
    "sparse_words_total": "sparse_words",
    "saved_words_total": "saved_words",
    "retry_messages_total": "retry_messages",
    "retry_words_total": "retry_words",
    "checkpoint_words_total": "checkpoint_words",
}

_MAX_KEYS = {
    "flops_per_rank_max": "flops",
    "messages_per_rank_max": "messages",
    "words_per_rank_max": "words",
}


def live_segment_names() -> frozenset[str]:
    """Shared-memory segments currently owned (and not yet unlinked)."""
    return frozenset(_LIVE_SEGMENTS)


def _cleanup_leaked_segments() -> None:  # pragma: no cover - exit hook
    for name in list(_LIVE_SEGMENTS):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
        _LIVE_SEGMENTS.discard(name)


atexit.register(_cleanup_leaked_segments)


def tournament_levels(nranks: int) -> list[tuple[int, list[tuple[int, int]]]]:
    """The deterministic pairwise-reduction schedule for *nranks* buffers.

    Returns ``[(stride, [(dst, src), ...]), ...]``: at each level the rank
    ``dst`` accumulates ``src = dst + stride`` in place, for every ``dst``
    divisible by ``2·stride``. Survivors of level ``s`` are exactly the
    multiples of ``2s``, which is the compacted adjacent pairing of
    :func:`~repro.distsim.collectives.allreduce_values` — same pairs, same
    left/right operand order, hence bit-identical floating-point sums.
    The champion lands at rank 0.
    """
    if nranks < 1:
        raise ValidationError(f"nranks must be >= 1, got {nranks}")
    levels = []
    stride = 1
    while stride < nranks:
        pairs = [
            (dst, dst + stride)
            for dst in range(0, nranks, 2 * stride)
            if dst + stride < nranks
        ]
        levels.append((stride, pairs))
        stride *= 2
    return levels


def _attach(name: str, unregister: bool) -> shared_memory.SharedMemory:
    """Attach to an existing segment without double-registering it.

    On POSIX Pythons < 3.13 attaching also registers the segment with the
    attaching process's resource tracker. Under ``spawn`` each worker has
    its *own* tracker, which would unlink the segment out from under the
    owner when the worker exits (bpo-39959) — those workers unregister
    immediately. Under ``fork`` the tracker process is shared with the
    host; the duplicate registration is an idempotent set-add there, and
    unregistering would strip the *host's* registration instead.
    """
    seg = shared_memory.SharedMemory(name=name)
    if unregister:
        try:
            _resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    return seg


def _worker_main(rank: int, nranks: int, conn, unregister_shm: bool, generation: int = 0) -> None:
    """Persistent worker loop: attach segments, execute collective steps.

    Data never travels over the pipe — commands and acks only, in the
    supervisor's sequence-numbered envelope (``(seq, op, *args)`` in,
    ``(seq, status, payload)`` out) so the host can discard stale acks
    after a recovery. Buffers are float64 views over the shared segments;
    a ``reduce_level`` command makes this worker accumulate its pair
    partner in place. Each data-plane ack carries the number of elements
    the worker touched so the host can merge per-rank metrics.

    ``attach`` also (re)binds the worker's rank identity — a pool shrink
    renumbers survivors by attaching them under their new rank/nranks.
    """
    segments: list[shared_memory.SharedMemory] = []
    views: list[np.ndarray] = []
    try:
        while True:
            msg = conn.recv()
            seq, op, args = msg[0], msg[1], msg[2:]
            try:
                if op == "attach":
                    names, rank, nranks = args
                    views = []  # views must die before their segments close
                    for seg in segments:
                        seg.close()
                    segments = [_attach(n, unregister_shm) for n in names]
                    views = [
                        np.frombuffer(seg.buf, dtype=np.float64) for seg in segments
                    ]
                    conn.send((seq, "ok", 0))
                elif op == "reduce_level":
                    stride, count = args
                    touched = 0
                    if rank % (2 * stride) == 0 and rank + stride < nranks:
                        # No named slice views: a surviving local would keep
                        # the buffer exported and block segment close.
                        np.add(
                            views[rank][:count],
                            views[rank + stride][:count],
                            out=views[rank][:count],
                        )
                        touched = count
                    conn.send((seq, "ok", touched))
                elif op == "bcast":
                    root, count = args
                    touched = 0
                    if rank != root:
                        np.copyto(views[rank][:count], views[root][:count])
                        touched = count
                    conn.send((seq, "ok", touched))
                elif op == "barrier":
                    conn.send((seq, "ok", 0))
                elif op == "ping":  # supervisor heartbeat / tests
                    conn.send(
                        (
                            seq,
                            "ok",
                            {
                                "pid": os.getpid(),
                                "generation": generation,
                                "blas_pinned": os.environ.get("OMP_NUM_THREADS"),
                            },
                        )
                    )
                elif op == "sleep":  # injected stall / test hook: a hung worker
                    time.sleep(args[0])
                    conn.send((seq, "ok", 0))
                elif op == "crash":  # test hook: a dying worker
                    os._exit(13)
                elif op == "exit":
                    conn.send((seq, "ok", 0))
                    return
                else:
                    conn.send((seq, "err", f"unknown command {op!r}"))
            except Exception as exc:  # surface, don't die silently
                conn.send((seq, "err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        views = []  # release the exported buffers before closing
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass


class MultiprocessingBackend:
    """``ExecutionBackend`` over supervised shared-memory worker processes.

    Numerics are computed by the workers (real parallel data movement and
    reduction through ``multiprocessing.shared_memory``); the α-β-γ costs,
    clocks, trace and comm decisions are charged to an internal ledger
    :class:`BSPCluster` through its charge-only methods, so
    ``cost_summary()`` is byte-identical to a BSP run of the same
    schedule. Failures are *real*: a seeded fault plan SIGKILLs, stalls
    or corrupts actual worker processes, and ``failure_policy`` selects
    fail-fast, supervised respawn, or pool shrink with rank
    redistribution (see the module docstring's robustness contract).
    """

    parallel_ranks = False  # map_ranks is serial: closures don't cross exec

    def __init__(
        self,
        nranks: int,
        *,
        machine: str = "comet_effective",
        allreduce_algorithm: str = "recursive_doubling",
        comm: str = "dense",
        jitter_seed=None,
        metrics=None,
        timeout: float = 120.0,
        min_segment_bytes: int = 1 << 13,
        failure_policy: str = "fail_fast",
        faults=None,
        retry: RetryPolicy | None = None,
        comm_topology: str = "flat",
        comm_compress: str = "none",
        compress_seed: int = 0,
    ) -> None:
        if comm not in sc.COMM_MODES:
            raise ValidationError(f"comm must be one of {sc.COMM_MODES}, got {comm!r}")
        if not (np.isfinite(timeout) and timeout > 0):
            raise ValidationError(f"mp timeout must be finite and > 0, got {timeout}")
        if failure_policy not in FAILURE_POLICIES:
            raise ValidationError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ValidationError(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        self.comm = comm
        self.nranks = int(nranks)
        self.timeout = float(timeout)
        self.failure_policy = failure_policy
        self.replicated = ReplicatedCache(enabled=False)
        self._injector = as_injector(faults)
        self._retry = retry
        self._machine = machine
        self._allreduce_algorithm = allreduce_algorithm
        self._jitter_seed = jitter_seed
        # The cost ledger: a fault-free BSP cluster driven only through its
        # charge-only methods — never sees payloads, charges exactly what a
        # BSPBackend run of the same schedule charges.
        self._ledger = BSPCluster(
            nranks,
            machine,
            allreduce_algorithm=allreduce_algorithm,
            jitter_seed=jitter_seed,
            metrics=metrics,
            comm_topology=comm_topology,
            comm_compress=comm_compress,
            compress_seed=compress_seed,
        )
        # The ledger validated the v2 knobs. Compression numerics happen
        # here on the host (workers only ever reduce dense buffers), but
        # the bank is the *ledger's*: its charge-only methods never call
        # compress, so sharing keeps one source of error-feedback state —
        # the residual gauge and comm_state_snapshot both read it.
        self.comm_topology = comm_topology
        self.compress = self._ledger.compress
        self._compressor = self._ledger._compressor
        self._metrics = metrics
        self.worker_stats = [
            {"commands": 0, "elements": 0} for _ in range(self.nranks)
        ]
        # Data-plane stats of ranks retired by a shrink (published at
        # teardown after the surviving ranks, in retirement order).
        self._retired_stats: list[dict] = []
        # Dead ranks' accumulated cost-counter fields, folded into
        # cost_summary() — a retired rank's past work still happened.
        self._retired_costs: dict[str, float] = {}
        # (action, ranks) recovery log, surfaced in tests and benchmarks.
        self.recovery_events: list[tuple[str, tuple[int, ...]]] = []
        self.retry_waits = 0
        self._closed = False
        self._broken: str | None = None
        self._capacity = 0
        self._coll_index = 0
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: list[np.ndarray] = []
        methods = get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
        ctx = get_context(start_method)
        if start_method == "fork":
            # Start the host's resource tracker *before* forking so every
            # worker inherits it: one tracker, idempotent duplicate
            # registrations, no per-child tracker warning about segments
            # the host already unlinked.
            _resource_tracker.ensure_running()
        # Failures during construction cannot be recovered by replay (no
        # checkpoint exists outside a ResilientLoop body yet) — the
        # _recovering latch forces the fail-fast path until setup is done.
        self._recovering = True
        self._sup = WorkerSupervisor(
            _worker_main,
            self.nranks,
            ctx=ctx,
            unregister_shm=start_method != "fork",
        )
        self._levels = tournament_levels(self.nranks)
        self._ensure_capacity(max(1, min_segment_bytes // 8))
        self._recovering = False

    @classmethod
    def from_config(cls, config: RuntimeConfig, nranks: int) -> "MultiprocessingBackend":
        """Build the backend a config describes (chaos plan and all)."""
        if config.cluster is not None:
            raise ValidationError(
                "the mp backend builds its own workers; a prebuilt BSP cluster "
                "cannot be supplied"
            )
        return cls(
            nranks,
            machine=config.machine,
            allreduce_algorithm=config.allreduce_algorithm,
            comm=config.comm,
            jitter_seed=config.jitter_seed,
            metrics=config.metrics,
            timeout=config.mp_timeout,
            failure_policy=config.mp_failure_policy,
            faults=config.faults,
            retry=config.retry,
            comm_topology=config.comm_topology,
            comm_compress=config.comm_compress,
        )

    # ------------------------------------------------------------------ #
    # worker coordination
    # ------------------------------------------------------------------ #
    @property
    def supervisor(self) -> WorkerSupervisor:
        return self._sup

    def _check_open(self) -> None:
        if self._broken:
            raise ConvergenceError(
                f"mp backend is unusable after a worker failure ({self._broken})",
                partial=None,
            )
        if self._closed:
            raise CommunicatorError("mp backend has been closed")

    def _fail(self, why: str) -> ConvergenceError:
        """Tear down after an unrecoverable worker fault; nothing may leak."""
        self._broken = why
        self._teardown(graceful=False)
        return ConvergenceError(
            f"mp backend worker failure: {why} — worker processes terminated, "
            "shared memory unlinked; the last checkpointed state (if any) is "
            "attached as .partial, and mp_failure_policy='respawn'/'shrink' "
            "recovers instead of failing",
            partial=None,
        )

    def _await(self, rank: int, seq: int, label: str) -> Any:
        """Await *rank*'s ack for envelope *seq*, granting retry backoff grace.

        Returns the ack payload, or None when the rank failed (deadline
        and every backoff extension exhausted, or its pipe died). Each
        grace extension is fault-tolerance traffic: it bumps the
        ``retry_*`` ledger counters (one ack-word recovery round) and the
        ``recovery_retry_waits_total`` metric.
        """
        deadline = time.monotonic() + self.timeout
        attempt = 0
        while True:
            ack = self._sup.recv_ack(rank, seq, deadline)
            if ack is not None:
                status, payload = ack
                if status != "ok":
                    raise self._fail(f"worker {rank} errored in {label!r}: {payload}")
                return payload
            if (
                self._retry is not None
                and attempt < self._retry.max_retries
                and self._sup.is_alive(rank)
            ):
                attempt += 1
                grace = max(self._retry.backoff(attempt), 1e-3)
                self.retry_waits += 1
                self._ledger.recover(self._retry.ack_words, label="mp_retry_wait")
                if self._metrics is not None:
                    from repro.obs.metrics import record_recovery

                    record_recovery(self._metrics, retry_waits=1)
                deadline = time.monotonic() + grace
                continue
            return None

    def _roundtrip(
        self,
        targets: Sequence[int],
        cmd_for: Callable[[int], tuple],
        label: str,
    ) -> None:
        """Send ``cmd_for(rank)`` to every target and await every ack.

        A broken pipe, a worker error, or a deadline miss (after backoff
        grace) routes to :meth:`_handle_failure` — which recovers per the
        failure policy or raises the fail-fast ConvergenceError.
        """
        pending: list[tuple[int, int]] = []
        failed: list[int] = []
        for r in targets:
            seq = self._sup.next_seq()
            if self._sup.send(r, seq, *cmd_for(r)):
                pending.append((r, seq))
            else:
                failed.append(r)
        for r, seq in pending:
            if failed:
                # Already recovering this round: don't await the rest, a
                # torn collective will be replayed from the checkpoint.
                break
            payload = self._await(r, seq, label)
            if payload is None:
                failed.append(r)
            else:
                self.worker_stats[r]["commands"] += 1
                self.worker_stats[r]["elements"] += int(payload)
        if failed:
            self._handle_failure(label, failed)

    def _handle_failure(self, label: str, suspects: Sequence[int]) -> None:
        """Classify the pool and recover per the failure policy (raises).

        Every rank is heartbeat-probed so simultaneous failures are
        handled in one recovery; a live-but-unresponsive rank is *hung*
        and treated exactly like a dead one (SIGKILLed, then respawned or
        dropped) — a rank slower than the deadline plus backoff grace has
        failed, which is the straggler-escalation semantic.
        """
        if self.failure_policy == "fail_fast" or self._recovering:
            raise self._fail(self._describe(label, sorted(set(suspects))))
        self._recovering = True
        try:
            statuses = self._sup.heartbeat(min(self.timeout, 2.0))
            failed = sorted(
                set(suspects) | {s.rank for s in statuses if not s.healthy}
            )
            if len(failed) >= self.nranks:
                raise self._fail(
                    f"every rank failed during {label!r}; nothing to recover on"
                )
            for r in failed:
                self._sup.kill(r)  # reap dead ones, SIGKILL hung ones
                self._sup.drain(r)
            if self._injector is not None:
                # Triggered scheduled crashes must not refire on replay.
                self._injector.heal_all()
            from repro.obs.metrics import record_recovery

            if self.failure_policy == "respawn":
                self._sup.respawn(failed)
                self._attach_all()
                self.recovery_events.append(("respawn", tuple(failed)))
                record_recovery(self._metrics, respawns=len(failed), ranks_lost=len(failed))
                raise WorkerFailureError(
                    self._describe(label, failed)
                    + f" — respawned rank(s) {failed}, replaying from checkpoint",
                    ranks=tuple(failed),
                    action="respawn",
                )
            # shrink: renumber the survivors to a contiguous P′-rank pool
            survivors = [r for r in range(self.nranks) if r not in failed]
            self._shrink_to(survivors, failed)
            self.recovery_events.append(("shrink", tuple(failed)))
            record_recovery(self._metrics, shrinks=1, ranks_lost=len(failed))
            raise WorkerFailureError(
                self._describe(label, failed)
                + f" — pool shrunk {len(survivors) + len(failed)}→{len(survivors)}, "
                "repartitioning and resuming from checkpoint",
                ranks=tuple(failed),
                action="shrink",
                new_nranks=len(survivors),
            )
        finally:
            self._recovering = False

    def _describe(self, label: str, ranks: Sequence[int]) -> str:
        states = []
        for r in ranks:
            alive = self._sup.is_alive(r)
            states.append(f"worker {r} {'hung' if alive else 'died'}")
        return (
            f"{', '.join(states)} in {label!r} (deadline {self.timeout:g}s"
            + (
                f" + {self._retry.max_retries} backoff retries"
                if self._retry is not None
                else ""
            )
            + ")"
        )

    def _attach_all(self) -> None:
        """(Re)bind every worker to the current segments under its rank."""
        names = [seg.name for seg in self._segments]
        self._roundtrip(
            range(self.nranks),
            lambda r: ("attach", names, r, self.nranks),
            "attach",
        )

    def _shrink_to(self, survivors: list[int], failed: list[int]) -> None:
        """Drop *failed*, renumber *survivors*, carry ledger and segments.

        The survivors keep their own segments (reordered to the new rank
        ids); the dead ranks' segments are unlinked. Their cost counters
        move into the retired totals so ``cost_summary()`` still accounts
        for work done before the failure, while the new P′-rank ledger is
        seeded with the survivors' accumulated counters and clocks — the
        cost timeline continues, it does not restart.
        """
        old = self._ledger
        for r in failed:
            for key, fld in _TOTAL_KEYS.items():
                self._retired_costs[key] = self._retired_costs.get(key, 0.0) + getattr(
                    old.counters[r], fld
                )
            for key, fld in _MAX_KEYS.items():
                self._retired_costs[key] = max(
                    self._retired_costs.get(key, 0.0), getattr(old.counters[r], fld)
                )
            self._retired_costs["elapsed"] = max(
                self._retired_costs.get("elapsed", 0.0), old.counters[r].clock
            )
            self._retired_stats.append(self.worker_stats[r])
        new = BSPCluster(
            len(survivors),
            self._machine,
            allreduce_algorithm=self._allreduce_algorithm,
            jitter_seed=self._jitter_seed,
            trace=old.trace,
            metrics=self._metrics,
            comm_topology=self.comm_topology,
            comm_compress=self.compress,
        )
        # Carry the error-feedback/RNG state: the replay must restore the
        # checkpointed compressor snapshot against the same bank object.
        if self._compressor is not None:
            new._compressor = self._compressor
        for new_r, old_r in enumerate(survivors):
            src, dst = old.counters[old_r], new.counters[new_r]
            for fld in _COUNTER_FIELDS:
                setattr(dst, fld, getattr(src, fld))
        self._ledger = new
        self.worker_stats = [self.worker_stats[r] for r in survivors]
        self._sup.renumber(survivors)
        keep = [self._segments[r] for r in survivors]
        drop = [self._segments[r] for r in failed]
        self._views = [self._views[r] for r in survivors]
        self._segments = keep
        for seg in drop:
            self._unlink(seg)
        self.nranks = len(survivors)
        self._levels = tournament_levels(self.nranks)
        self._attach_all()

    def _ensure_capacity(self, n_elements: int) -> None:
        """Grow the per-rank segments to hold *n_elements* float64 each."""
        if n_elements <= self._capacity and self._segments:
            return
        nbytes = max(int(n_elements), 1) * 8
        old = self._segments
        self._segments = []
        self._views = []
        for rank in range(self.nranks):
            name = f"{_SEGMENT_PREFIX}_{os.getpid()}_{rank}_{secrets.token_hex(4)}"
            seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
            _LIVE_SEGMENTS.add(seg.name)
            self._segments.append(seg)
            self._views.append(np.frombuffer(seg.buf, dtype=np.float64))
        self._attach_all()
        for seg in old:
            self._unlink(seg)
        self._capacity = nbytes // 8

    @staticmethod
    def _unlink(seg: shared_memory.SharedMemory) -> None:
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _LIVE_SEGMENTS.discard(seg.name)

    def _teardown(self, graceful: bool) -> None:
        self._sup.shutdown(graceful=graceful)
        # Views must die before the segments: SharedMemory.close refuses
        # to tear down a buffer that still has exported numpy views.
        self._views = []
        segments, self._segments = self._segments, []
        for seg in segments:
            self._unlink(seg)
        self._capacity = 0
        self._publish_worker_metrics()

    def _publish_worker_metrics(self) -> None:
        if self._metrics is None:
            return
        from repro.obs.metrics import merge_rank_counts

        # Retired (shrunk-away) ranks publish after the survivors; their
        # label is positional, which keeps the pass deterministic and the
        # totals exact even though their original rank id is gone.
        stats = self.worker_stats + self._retired_stats
        merge_rank_counts(
            self._metrics,
            "mpbackend_commands",
            [s["commands"] for s in stats],
            help="collective commands executed per mp worker",
        )
        merge_rank_counts(
            self._metrics,
            "mpbackend_elements",
            [s["elements"] for s in stats],
            help="float64 elements reduced/copied per mp worker",
        )

    def close(self) -> None:
        """Shut workers down and unlink every segment (idempotent).

        The cost ledger survives: ``cost_summary()``, ``elapsed`` and the
        trace remain readable after close — solvers close the backend in a
        ``finally`` and assemble their ``SolveResult`` afterwards.
        """
        if self._closed or self._broken:
            return
        self._closed = True
        self._teardown(graceful=True)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # chaos injection
    # ------------------------------------------------------------------ #
    def _precollective(self, label: str) -> tuple[int, Any]:
        """Health-check the pool and apply the chaos plan for one collective.

        Returns ``(collective_index, fault_verdict)``. The index is
        monotone for the backend's lifetime — it keeps increasing through
        replays, exactly like the BSP cluster's, so one-shot scheduled
        faults never refire after a recovery. Any rank found dead here
        (externally killed, or SIGKILLed by a due scheduled crash) routes
        to :meth:`_handle_failure` before the collective starts.
        """
        self._check_open()
        index = self._coll_index
        self._coll_index += 1
        suspects = set(self._sup.reap())
        fault = None
        if self._injector is not None:
            for r in self._injector.due_crashes(
                self.nranks, time=self._ledger.elapsed, op_index=index
            ):
                if self._sup.is_alive(r):
                    self._sup.kill(r)  # the real SIGKILL the plan schedules
                suspects.add(r)
            fault = self._injector.collective_fault(self.nranks, index)
        if suspects:
            self._handle_failure(label, sorted(suspects))
        return index, fault

    def _apply_chaos(self, index: int, fault, n: int, payload_ranks: Sequence[int]) -> None:
        """Inject stalls and shm payload corruption for one collective.

        Corruption flips the rank's shared-memory contribution *before*
        the reduction (deterministic victim element, keyed by the plan
        seed and the collective index); a NaN/Inf then propagates through
        the tournament into the result, where the solver's NumericalGuard
        sees it — the same integration point the simulated engines use.
        Stalls make the worker really sleep; the stall acks are awaited
        under the usual deadline + backoff grace, so a short stall is a
        slow rank and a long one escalates to hung-rank recovery.
        """
        if fault is None or not fault.any:
            return
        for r in payload_ranks:
            mode = fault.corruptions.get(r)
            if mode is not None and n > 0:
                corrupted = self._injector.corrupt(
                    np.array(self._views[r][:n], copy=True),
                    mode,
                    rank=r,
                    op_index=index,
                )
                np.copyto(self._views[r][:n], corrupted)
        pending: list[tuple[int, int]] = []
        failed: list[int] = []
        for r, duration in sorted(fault.stalls.items()):
            if r >= self.nranks or not self._sup.is_alive(r):
                continue
            seq = self._sup.next_seq()
            if self._sup.send(r, seq, "sleep", float(duration)):
                pending.append((r, seq))
            else:
                failed.append(r)
        for r, seq in pending:
            if not failed and self._await(r, seq, "injected stall") is None:
                failed.append(r)
        if failed:
            self._handle_failure("injected stall", failed)

    # ------------------------------------------------------------------ #
    # shared-memory numerics
    # ------------------------------------------------------------------ #
    def _load(self, contribs: Sequence[np.ndarray], what: str) -> tuple[int, tuple]:
        """Validate and scatter host contributions into the rank segments."""
        self._check_open()
        if len(contribs) != self.nranks:
            raise CommunicatorError(
                f"{what} needs one buffer per rank ({self.nranks}), got {len(contribs)}"
            )
        arrays = [np.asarray(v, dtype=np.float64) for v in contribs]
        shape = arrays[0].shape
        for i, a in enumerate(arrays):
            if a.shape != shape:
                raise CommunicatorError(
                    f"{what} buffer shape mismatch: rank 0 has {shape}, "
                    f"rank {i} has {a.shape}"
                )
        n = int(arrays[0].size)
        self._ensure_capacity(n)
        for rank, a in enumerate(arrays):
            np.copyto(self._views[rank][:n], a.reshape(-1))
        return n, shape

    def _run_tournament(self, n: int) -> None:
        """Execute the pairwise reduction levels on the workers."""
        for stride, pairs in self._levels:
            self._roundtrip(
                [dst for dst, _src in pairs],
                lambda r: ("reduce_level", stride, n),
                "allreduce",
            )

    def _result(self, n: int, shape: tuple, root: int = 0) -> np.ndarray:
        return np.array(self._views[root][:n], copy=True).reshape(shape)

    # ------------------------------------------------------------------ #
    # ExecutionBackend protocol
    # ------------------------------------------------------------------ #
    def _allreduce_compressed(self, n: int, shape: tuple, label: str) -> np.ndarray:
        """Compress the loaded contributions in place, then run the tournament.

        Mirrors :meth:`BSPCluster._reduce_compressed` exactly: flat
        topology compresses every rank's shared-memory contribution
        (stream = rank); hierarchical first runs the intra-node tournament
        levels (stride < node_size — for power-of-two node sizes those
        pair only within node blocks, leaving each block's dense partial
        on its leader), compresses the leader partials (stream = node
        index), then runs the remaining inter-node levels. Same compress
        inputs, same streams, same reduction order — bit-identical results
        to the BSP/threads backends.
        """
        bank = self._compressor
        node_size = (
            self._ledger.machine.node_size
            if self.comm_topology == "hier"
            and isinstance(self._ledger.machine, HierarchicalMachine)
            else 1
        )
        if self.comm_topology == "hier":
            intra = [(s, p) for s, p in self._levels if s < node_size]
            inter = [(s, p) for s, p in self._levels if s >= node_size]
            for stride, pairs in intra:
                self._roundtrip(
                    [dst for dst, _src in pairs],
                    lambda r: ("reduce_level", stride, n),
                    "allreduce",
                )
            leaders = list(range(0, self.nranks, node_size))
            compressed = []
            for node, leader in enumerate(leaders):
                c = bank.compress(
                    np.array(self._views[leader][:n], copy=True),
                    label=label,
                    stream=node,
                )
                np.copyto(self._views[leader][:n], c)
                compressed.append(c)
            for stride, pairs in inter:
                self._roundtrip(
                    [dst for dst, _src in pairs],
                    lambda r: ("reduce_level", stride, n),
                    "allreduce",
                )
        else:
            compressed = []
            for rank in range(self.nranks):
                c = bank.compress(
                    np.array(self._views[rank][:n], copy=True),
                    label=label,
                    stream=rank,
                )
                np.copyto(self._views[rank][:n], c)
                compressed.append(c)
            self._run_tournament(n)
        wire_nnz = 0.0
        if self.compress.kind == "topk":
            mask = np.zeros(n, dtype=bool)
            for c in compressed:
                mask |= c != 0.0
            wire_nnz = float(np.count_nonzero(mask))
        self._ledger.charge_allreduce_compressed(float(n), wire_nnz, label=label)
        return self._result(n, shape)

    def comm_state_snapshot(self):
        return self._ledger.comm_state_snapshot()

    def comm_state_restore(self, snap) -> None:
        self._ledger.comm_state_restore(snap)

    def allreduce(self, contribs: Sequence[np.ndarray], label: str = "allreduce") -> np.ndarray:
        n, shape = self._load(contribs, "allreduce")
        index, fault = self._precollective(label)
        self._apply_chaos(index, fault, n, range(self.nranks))
        if self.compress.enabled:
            return self._allreduce_compressed(n, shape, label)
        if self.comm == "dense":
            self._ledger.charge_allreduce(float(n), label=label)
        else:
            # The sparse/auto charge needs the union support size — the
            # same quantity BSP reads off its SparseVector union. Counted
            # on the 1-D host views before the workers densify anything.
            if len(shape) != 1:
                raise CommunicatorError(
                    f"sparse-encoded allreduce needs 1-D buffers, got shape {shape}"
                )
            union = np.zeros(n, dtype=bool)
            for rank in range(self.nranks):
                union |= self._views[rank][:n] != 0.0
            self._ledger.charge_allreduce_comm(
                n, int(np.count_nonzero(union)), mode=self.comm, label=label
            )
        self._run_tournament(n)
        return self._result(n, shape)

    def reduce(self, contribs: Sequence[np.ndarray], root: int = 0, label: str = "reduce") -> np.ndarray:
        if not (0 <= root < self.nranks):
            raise CommunicatorError(f"root {root} out of range [0, {self.nranks})")
        n, shape = self._load(contribs, "reduce")
        index, fault = self._precollective(label)
        self._apply_chaos(index, fault, n, range(self.nranks))
        self._ledger.charge_reduce(float(n), label=label)
        self._run_tournament(n)
        # The tournament champion lives at rank 0; the host-view protocol
        # hands the root's result back to the caller either way.
        return self._result(n, shape)

    def broadcast(self, value: np.ndarray, root: int = 0, label: str = "bcast") -> np.ndarray:
        if not (0 <= root < self.nranks):
            raise CommunicatorError(f"root {root} out of range [0, {self.nranks})")
        self._check_open()
        arr = np.asarray(value, dtype=np.float64)
        n = int(arr.size)
        self._ensure_capacity(n)
        np.copyto(self._views[root][:n], arr.reshape(-1))
        index, fault = self._precollective(label)
        self._apply_chaos(index, fault, n, (root,))
        self._ledger.charge_bcast(float(n), label=label)
        self._roundtrip(range(self.nranks), lambda r: ("bcast", root, n), "bcast")
        return self._result(n, arr.shape, root=root)

    def barrier(self, label: str = "barrier") -> None:
        self._check_open()
        index, fault = self._precollective(label)
        self._apply_chaos(index, fault, 0, ())
        self._ledger.barrier(label=label)  # charge-only: no payload exists
        self._roundtrip(range(self.nranks), lambda r: ("barrier",), "barrier")

    def compute(self, flops, label: str = "compute") -> None:
        self._ledger.compute(flops, label=label)

    def checkpoint(self, words: float) -> None:
        self._ledger.checkpoint(words)

    def recover(self, words: float) -> None:
        self._ledger.recover(words)

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        """Serial fallback: solver closures cannot cross a process boundary."""
        return [fn(p) for p in range(count)]

    @property
    def elapsed(self) -> float:
        return self._ledger.elapsed

    @property
    def last_comm_decision(self) -> str | None:
        return self._ledger.last_comm_decision

    @property
    def trace(self) -> Trace | None:
        return self._ledger.trace

    @property
    def injector(self) -> FaultInjector | None:
        return self._injector

    @property
    def machine_name(self) -> str:
        return self._ledger.machine.name

    @property
    def allreduce_algorithm(self) -> str:
        return self._ledger.allreduce_algorithm

    def cost_summary(self) -> dict | None:
        summary = dict(self._ledger.cost.summary())
        if self._retired_costs:
            for key in _TOTAL_KEYS:
                summary[key] += self._retired_costs.get(key, 0.0)
            for key in _MAX_KEYS:
                summary[key] = max(summary[key], self._retired_costs.get(key, 0.0))
            summary["elapsed"] = max(
                summary["elapsed"], self._retired_costs.get("elapsed", 0.0)
            )
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._broken or ("closed" if self._closed else "live")
        return (
            f"MultiprocessingBackend(nranks={self.nranks}, "
            f"machine={self.machine_name!r}, policy={self.failure_policy!r}, {state})"
        )


class ThreadPoolBackend(BSPBackend):
    """BSP semantics with genuinely parallel per-rank compute closures.

    Inherits every collective, charge and fault behaviour from
    :class:`BSPBackend` (numerics on the cluster, bit-identical); only
    :meth:`map_ranks` changes — per-rank closures run on a pool of
    ``nranks`` threads. The solvers' Gram stages call into BLAS, which
    releases the GIL, so the dominant compute phase scales with cores
    (docs/PERFORMANCE.md has the measured-wall-clock methodology and the
    single-core caveats).
    """

    parallel_ranks = True

    def __init__(self, cluster: BSPCluster, comm: str = "dense") -> None:
        super().__init__(cluster, comm=comm)
        self._pool: ThreadPoolExecutor | None = None

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        if count <= 1:
            return [fn(p) for p in range(count)]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.nranks, thread_name_prefix="repro-rank"
            )
        return list(self._pool.map(fn, range(count)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
