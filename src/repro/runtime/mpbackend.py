"""Real-parallelism execution backends: worker processes and BLAS threads.

Every backend in :mod:`repro.runtime.backend` *simulates* its ranks inside
one process — the α-β-γ charges are exact, but the host wall-clock only
benefits from the fast path of docs/PERFORMANCE.md, never from actual
hardware parallelism. This module adds the two backends that run ranks for
real while keeping the simulated cost model as the source of truth:

* :class:`MultiprocessingBackend` (``backend="mp"``) — one persistent
  worker **process** per rank. Collective payloads move through
  ``multiprocessing.shared_memory`` segments (one per rank, zero-copy
  between processes) and are reduced by the workers themselves in the
  exact pairwise-tournament order of
  :func:`repro.distsim.collectives.allreduce_values`, so results are
  **bit-identical** to every simulated backend. Charged costs come from an
  internal ledger :class:`~repro.distsim.bsp.BSPCluster` driven through
  its charge-only methods — byte-identical cost summaries to a BSP run of
  the same schedule.
* :class:`ThreadPoolBackend` (``backend="threads"``) — a
  :class:`~repro.runtime.backend.BSPBackend` whose :meth:`map_ranks` runs
  the per-rank compute closures on a thread pool. The Gram-dominated
  stages (A+B of Fig. 1) spend their time inside BLAS ``dgemm``/``dsyrk``
  which release the GIL, so on a multi-core host the dominant compute
  phase genuinely runs ``P``-way parallel. Collectives stay on the
  cluster: same numerics, same charges, same fault injection as BSP.

Division of labour (why two backends): Python closures cannot cross a
process boundary, so the mp backend parallelizes the *collectives* (its
``map_ranks`` is the serial fallback), while the threads backend
parallelizes the *per-rank compute* — together they cover both halves of
the paper's compute/communicate loop with real hardware.

Determinism contract
--------------------
``MultiprocessingBackend.allreduce`` reduces with the tournament pairing
``(i, i + s)`` for ``i ≡ 0 (mod 2s)``, ``s = 1, 2, 4, …`` — provably the
same pairing (hence the same floating-point sums) as
``allreduce_values``; the cross-backend conformance matrix in
``tests/test_runtime/test_cross_backend.py`` pins this bit-for-bit.

Robustness contract
-------------------
Every worker round-trip is guarded by a deadline
(:attr:`RuntimeConfig.mp_timeout`): a worker that crashed or hangs
mid-collective surfaces as :class:`~repro.exceptions.ConvergenceError`
(with ``.partial`` for graceful degradation) instead of deadlocking the
host, and the backend tears down its processes and **unlinks every
shared-memory segment** on both the success and the failure path (the
lifecycle tests assert ``/dev/shm`` stays clean).
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import resource_tracker as _resource_tracker
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.distsim import sparse_collectives as sc
from repro.distsim.bsp import BSPCluster
from repro.distsim.faults import FaultInjector
from repro.distsim.trace import Trace
from repro.exceptions import CommunicatorError, ConvergenceError, ValidationError
from repro.runtime.backend import BSPBackend
from repro.runtime.config import RuntimeConfig
from repro.runtime.dedup import ReplicatedCache

__all__ = [
    "MultiprocessingBackend",
    "ThreadPoolBackend",
    "tournament_levels",
    "live_segment_names",
]

_SEGMENT_PREFIX = "repro_mp"

# Names of every shared-memory segment this process has created and not yet
# unlinked — the leak-test surface and the atexit safety net.
_LIVE_SEGMENTS: set[str] = set()


def live_segment_names() -> frozenset[str]:
    """Shared-memory segments currently owned (and not yet unlinked)."""
    return frozenset(_LIVE_SEGMENTS)


def _cleanup_leaked_segments() -> None:  # pragma: no cover - exit hook
    for name in list(_LIVE_SEGMENTS):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
        _LIVE_SEGMENTS.discard(name)


atexit.register(_cleanup_leaked_segments)


def tournament_levels(nranks: int) -> list[tuple[int, list[tuple[int, int]]]]:
    """The deterministic pairwise-reduction schedule for *nranks* buffers.

    Returns ``[(stride, [(dst, src), ...]), ...]``: at each level the rank
    ``dst`` accumulates ``src = dst + stride`` in place, for every ``dst``
    divisible by ``2·stride``. Survivors of level ``s`` are exactly the
    multiples of ``2s``, which is the compacted adjacent pairing of
    :func:`~repro.distsim.collectives.allreduce_values` — same pairs, same
    left/right operand order, hence bit-identical floating-point sums.
    The champion lands at rank 0.
    """
    if nranks < 1:
        raise ValidationError(f"nranks must be >= 1, got {nranks}")
    levels = []
    stride = 1
    while stride < nranks:
        pairs = [
            (dst, dst + stride)
            for dst in range(0, nranks, 2 * stride)
            if dst + stride < nranks
        ]
        levels.append((stride, pairs))
        stride *= 2
    return levels


def _attach(name: str, unregister: bool) -> shared_memory.SharedMemory:
    """Attach to an existing segment without double-registering it.

    On POSIX Pythons < 3.13 attaching also registers the segment with the
    attaching process's resource tracker. Under ``spawn`` each worker has
    its *own* tracker, which would unlink the segment out from under the
    owner when the worker exits (bpo-39959) — those workers unregister
    immediately. Under ``fork`` the tracker process is shared with the
    host; the duplicate registration is an idempotent set-add there, and
    unregistering would strip the *host's* registration instead.
    """
    seg = shared_memory.SharedMemory(name=name)
    if unregister:
        try:
            _resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    return seg


def _worker_main(rank: int, nranks: int, conn, unregister_shm: bool) -> None:
    """Persistent worker loop: attach segments, execute collective steps.

    Data never travels over the pipe — commands and acks only. Buffers are
    float64 views over the shared segments; a ``reduce_level`` command
    makes this worker accumulate its pair partner in place. Each ack
    carries the number of elements the worker touched so the host can
    merge per-rank data-plane metrics.
    """
    segments: list[shared_memory.SharedMemory] = []
    views: list[np.ndarray] = []
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            try:
                if op == "attach":
                    _, names = cmd
                    views = []  # views must die before their segments close
                    for seg in segments:
                        seg.close()
                    segments = [_attach(n, unregister_shm) for n in names]
                    views = [
                        np.frombuffer(seg.buf, dtype=np.float64) for seg in segments
                    ]
                    conn.send(("ok", 0))
                elif op == "reduce_level":
                    _, stride, count = cmd
                    touched = 0
                    if rank % (2 * stride) == 0 and rank + stride < nranks:
                        # No named slice views: a surviving local would keep
                        # the buffer exported and block segment close.
                        np.add(
                            views[rank][:count],
                            views[rank + stride][:count],
                            out=views[rank][:count],
                        )
                        touched = count
                    conn.send(("ok", touched))
                elif op == "bcast":
                    _, root, count = cmd
                    touched = 0
                    if rank != root:
                        np.copyto(views[rank][:count], views[root][:count])
                        touched = count
                    conn.send(("ok", touched))
                elif op == "barrier":
                    conn.send(("ok", 0))
                elif op == "sleep":  # test hook: a hung worker
                    time.sleep(cmd[1])
                    conn.send(("ok", 0))
                elif op == "crash":  # test hook: a dying worker
                    os._exit(13)
                elif op == "exit":
                    conn.send(("ok", 0))
                    return
                else:
                    conn.send(("err", f"unknown command {op!r}"))
            except Exception as exc:  # surface, don't die silently
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        views = []  # release the exported buffers before closing
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass


class MultiprocessingBackend:
    """``ExecutionBackend`` over persistent shared-memory worker processes.

    Numerics are computed by the workers (real parallel data movement and
    reduction through ``multiprocessing.shared_memory``); the α-β-γ costs,
    clocks, trace and comm decisions are charged to an internal ledger
    :class:`BSPCluster` through its charge-only methods, so
    ``cost_summary()`` is byte-identical to a BSP run of the same
    schedule. Fault injection is rejected — these are real processes, and
    real failures surface as :class:`ConvergenceError` via the timeout
    guard instead of simulated verdicts.
    """

    parallel_ranks = False  # map_ranks is serial: closures don't cross exec

    def __init__(
        self,
        nranks: int,
        *,
        machine: str = "comet_effective",
        allreduce_algorithm: str = "recursive_doubling",
        comm: str = "dense",
        jitter_seed=None,
        metrics=None,
        timeout: float = 120.0,
        min_segment_bytes: int = 1 << 13,
    ) -> None:
        if comm not in sc.COMM_MODES:
            raise ValidationError(f"comm must be one of {sc.COMM_MODES}, got {comm!r}")
        if not (np.isfinite(timeout) and timeout > 0):
            raise ValidationError(f"mp timeout must be finite and > 0, got {timeout}")
        self.comm = comm
        self.nranks = int(nranks)
        self.timeout = float(timeout)
        self.replicated = ReplicatedCache(enabled=False)
        # The cost ledger: a fault-free BSP cluster driven only through its
        # charge-only methods — never sees payloads, charges exactly what a
        # BSPBackend run of the same schedule charges.
        self._ledger = BSPCluster(
            nranks,
            machine,
            allreduce_algorithm=allreduce_algorithm,
            jitter_seed=jitter_seed,
            metrics=metrics,
        )
        self._metrics = metrics
        self.worker_stats = [
            {"commands": 0, "elements": 0} for _ in range(self.nranks)
        ]
        self._closed = False
        self._broken: str | None = None
        self._capacity = 0
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: list[np.ndarray] = []
        methods = get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = get_context(start_method)
        if start_method == "fork":
            # Start the host's resource tracker *before* forking so every
            # worker inherits it: one tracker, idempotent duplicate
            # registrations, no per-child tracker warning about segments
            # the host already unlinked.
            _resource_tracker.ensure_running()
        self._conns = []
        self._procs = []
        for rank in range(self.nranks):
            host_conn, worker_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(rank, self.nranks, worker_conn, start_method != "fork"),
                daemon=True,
                name=f"repro-mp-worker-{rank}",
            )
            proc.start()
            worker_conn.close()
            self._conns.append(host_conn)
            self._procs.append(proc)
        self._levels = tournament_levels(self.nranks)
        self._ensure_capacity(max(1, min_segment_bytes // 8))

    @classmethod
    def from_config(cls, config: RuntimeConfig, nranks: int) -> "MultiprocessingBackend":
        """Build the backend a config describes (real processes: no faults)."""
        if config.cluster is not None:
            raise ValidationError(
                "the mp backend builds its own workers; a prebuilt BSP cluster "
                "cannot be supplied"
            )
        if config.faults is not None or config.retry is not None:
            raise ValidationError(
                "fault injection and retry policies are simulation features; "
                "the mp backend runs real processes (use backend='bsp' to "
                "inject faults, or rely on the mp timeout guard for real ones)"
            )
        return cls(
            nranks,
            machine=config.machine,
            allreduce_algorithm=config.allreduce_algorithm,
            comm=config.comm,
            jitter_seed=config.jitter_seed,
            metrics=config.metrics,
            timeout=config.mp_timeout,
        )

    # ------------------------------------------------------------------ #
    # worker coordination
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._broken:
            raise ConvergenceError(
                f"mp backend is unusable after a worker failure ({self._broken})",
                partial=None,
            )
        if self._closed:
            raise CommunicatorError("mp backend has been closed")

    def _fail(self, why: str) -> ConvergenceError:
        """Tear down after a worker fault; segments must not leak."""
        self._broken = why
        self._teardown(graceful=False)
        return ConvergenceError(
            f"mp backend worker failure: {why} — worker processes terminated, "
            "shared memory unlinked; rerun on backend='bsp' to reproduce the "
            "schedule in simulation",
            partial=None,
        )

    def _roundtrip(self, targets: Sequence[int], cmd: tuple, label: str) -> None:
        """Send *cmd* to *targets* and await every ack under the deadline."""
        for r in targets:
            try:
                self._conns[r].send(cmd)
            except (BrokenPipeError, OSError):
                raise self._fail(f"worker {r} pipe broken during {label}") from None
        deadline = time.monotonic() + self.timeout
        for r in targets:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._conns[r].poll(remaining):
                alive = self._procs[r].is_alive()
                raise self._fail(
                    f"worker {r} {'hung' if alive else 'died'} in {label!r} "
                    f"(deadline {self.timeout:g}s)"
                )
            try:
                status, payload = self._conns[r].recv()
            except (EOFError, OSError):
                raise self._fail(f"worker {r} died mid-{label}") from None
            if status != "ok":
                raise self._fail(f"worker {r} errored in {label!r}: {payload}")
            self.worker_stats[r]["commands"] += 1
            self.worker_stats[r]["elements"] += int(payload)

    def _ensure_capacity(self, n_elements: int) -> None:
        """Grow the per-rank segments to hold *n_elements* float64 each."""
        if n_elements <= self._capacity and self._segments:
            return
        nbytes = max(int(n_elements), 1) * 8
        old = self._segments
        self._segments = []
        self._views = []
        names = []
        for rank in range(self.nranks):
            name = f"{_SEGMENT_PREFIX}_{os.getpid()}_{rank}_{secrets.token_hex(4)}"
            seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
            _LIVE_SEGMENTS.add(seg.name)
            self._segments.append(seg)
            self._views.append(np.frombuffer(seg.buf, dtype=np.float64))
            names.append(seg.name)
        self._roundtrip(range(self.nranks), ("attach", names), "attach")
        for seg in old:
            self._unlink(seg)
        self._capacity = nbytes // 8

    @staticmethod
    def _unlink(seg: shared_memory.SharedMemory) -> None:
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _LIVE_SEGMENTS.discard(seg.name)

    def _teardown(self, graceful: bool) -> None:
        if graceful:
            for r, conn in enumerate(self._conns):
                try:
                    conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=1.0 if graceful else 0.2)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        # Views must die before the segments: SharedMemory.close refuses
        # to tear down a buffer that still has exported numpy views.
        self._views = []
        segments, self._segments = self._segments, []
        for seg in segments:
            self._unlink(seg)
        self._capacity = 0
        self._publish_worker_metrics()

    def _publish_worker_metrics(self) -> None:
        if self._metrics is None:
            return
        from repro.obs.metrics import merge_rank_counts

        merge_rank_counts(
            self._metrics,
            "mpbackend_commands",
            [s["commands"] for s in self.worker_stats],
            help="collective commands executed per mp worker",
        )
        merge_rank_counts(
            self._metrics,
            "mpbackend_elements",
            [s["elements"] for s in self.worker_stats],
            help="float64 elements reduced/copied per mp worker",
        )

    def close(self) -> None:
        """Shut workers down and unlink every segment (idempotent).

        The cost ledger survives: ``cost_summary()``, ``elapsed`` and the
        trace remain readable after close — solvers close the backend in a
        ``finally`` and assemble their ``SolveResult`` afterwards.
        """
        if self._closed or self._broken:
            return
        self._closed = True
        self._teardown(graceful=True)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # shared-memory numerics
    # ------------------------------------------------------------------ #
    def _load(self, contribs: Sequence[np.ndarray], what: str) -> tuple[int, tuple]:
        """Validate and scatter host contributions into the rank segments."""
        self._check_open()
        if len(contribs) != self.nranks:
            raise CommunicatorError(
                f"{what} needs one buffer per rank ({self.nranks}), got {len(contribs)}"
            )
        arrays = [np.asarray(v, dtype=np.float64) for v in contribs]
        shape = arrays[0].shape
        for i, a in enumerate(arrays):
            if a.shape != shape:
                raise CommunicatorError(
                    f"{what} buffer shape mismatch: rank 0 has {shape}, "
                    f"rank {i} has {a.shape}"
                )
        n = int(arrays[0].size)
        self._ensure_capacity(n)
        for rank, a in enumerate(arrays):
            np.copyto(self._views[rank][:n], a.reshape(-1))
        return n, shape

    def _run_tournament(self, n: int) -> None:
        """Execute the pairwise reduction levels on the workers."""
        for stride, pairs in self._levels:
            self._roundtrip(
                [dst for dst, _src in pairs], ("reduce_level", stride, n), "allreduce"
            )

    def _result(self, n: int, shape: tuple, root: int = 0) -> np.ndarray:
        return np.array(self._views[root][:n], copy=True).reshape(shape)

    # ------------------------------------------------------------------ #
    # ExecutionBackend protocol
    # ------------------------------------------------------------------ #
    def allreduce(self, contribs: Sequence[np.ndarray], label: str = "allreduce") -> np.ndarray:
        n, shape = self._load(contribs, "allreduce")
        if self.comm == "dense":
            self._ledger.charge_allreduce(float(n), label=label)
        else:
            # The sparse/auto charge needs the union support size — the
            # same quantity BSP reads off its SparseVector union. Counted
            # on the 1-D host views before the workers densify anything.
            if len(shape) != 1:
                raise CommunicatorError(
                    f"sparse-encoded allreduce needs 1-D buffers, got shape {shape}"
                )
            union = np.zeros(n, dtype=bool)
            for rank in range(self.nranks):
                union |= self._views[rank][:n] != 0.0
            self._ledger.charge_allreduce_comm(
                n, int(np.count_nonzero(union)), mode=self.comm, label=label
            )
        self._run_tournament(n)
        return self._result(n, shape)

    def reduce(self, contribs: Sequence[np.ndarray], root: int = 0, label: str = "reduce") -> np.ndarray:
        if not (0 <= root < self.nranks):
            raise CommunicatorError(f"root {root} out of range [0, {self.nranks})")
        n, shape = self._load(contribs, "reduce")
        self._ledger.charge_reduce(float(n), label=label)
        self._run_tournament(n)
        # The tournament champion lives at rank 0; the host-view protocol
        # hands the root's result back to the caller either way.
        return self._result(n, shape)

    def broadcast(self, value: np.ndarray, root: int = 0, label: str = "bcast") -> np.ndarray:
        if not (0 <= root < self.nranks):
            raise CommunicatorError(f"root {root} out of range [0, {self.nranks})")
        self._check_open()
        arr = np.asarray(value, dtype=np.float64)
        n = int(arr.size)
        self._ensure_capacity(n)
        np.copyto(self._views[root][:n], arr.reshape(-1))
        self._ledger.charge_bcast(float(n), label=label)
        self._roundtrip(range(self.nranks), ("bcast", root, n), "bcast")
        return self._result(n, arr.shape, root=root)

    def barrier(self, label: str = "barrier") -> None:
        self._check_open()
        self._ledger.barrier(label=label)  # charge-only: no payload exists
        self._roundtrip(range(self.nranks), ("barrier",), "barrier")

    def compute(self, flops, label: str = "compute") -> None:
        self._ledger.compute(flops, label=label)

    def checkpoint(self, words: float) -> None:
        self._ledger.checkpoint(words)

    def recover(self, words: float) -> None:
        self._ledger.recover(words)

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        """Serial fallback: solver closures cannot cross a process boundary."""
        return [fn(p) for p in range(count)]

    @property
    def elapsed(self) -> float:
        return self._ledger.elapsed

    @property
    def last_comm_decision(self) -> str | None:
        return self._ledger.last_comm_decision

    @property
    def trace(self) -> Trace | None:
        return self._ledger.trace

    @property
    def injector(self) -> FaultInjector | None:
        return None

    @property
    def machine_name(self) -> str:
        return self._ledger.machine.name

    @property
    def allreduce_algorithm(self) -> str:
        return self._ledger.allreduce_algorithm

    def cost_summary(self) -> dict | None:
        return self._ledger.cost.summary()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._broken or ("closed" if self._closed else "live")
        return (
            f"MultiprocessingBackend(nranks={self.nranks}, "
            f"machine={self.machine_name!r}, {state})"
        )


class ThreadPoolBackend(BSPBackend):
    """BSP semantics with genuinely parallel per-rank compute closures.

    Inherits every collective, charge and fault behaviour from
    :class:`BSPBackend` (numerics on the cluster, bit-identical); only
    :meth:`map_ranks` changes — per-rank closures run on a pool of
    ``nranks`` threads. The solvers' Gram stages call into BLAS, which
    releases the GIL, so the dominant compute phase scales with cores
    (docs/PERFORMANCE.md has the measured-wall-clock methodology and the
    single-core caveats).
    """

    parallel_ranks = True

    def __init__(self, cluster: BSPCluster, comm: str = "dense") -> None:
        super().__init__(cluster, comm=comm)
        self._pool: ThreadPoolExecutor | None = None

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        if count <= 1:
            return [fn(p) for p in range(count)]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.nranks, thread_name_prefix="repro-rank"
            )
        return list(self._pool.map(fn, range(count)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
