"""Unified solver runtime: config, execution backends, resilient driver.

This package is the one place the distributed solvers get their
cross-cutting machinery from:

* :class:`~repro.runtime.config.RuntimeConfig` — the validated bundle of
  machine/comm/fault/checkpoint/telemetry knobs every solver accepts as
  ``runtime=`` (with :func:`~repro.runtime.config.resolve_runtime`
  merging in legacy per-solver kwargs).
* :class:`~repro.runtime.backend.ExecutionBackend` — the collective
  protocol with :class:`~repro.runtime.backend.SerialBackend`,
  :class:`~repro.runtime.backend.BSPBackend` and
  :class:`~repro.runtime.backend.SPMDBackend` implementations, plus the
  real-parallelism substrates
  :class:`~repro.runtime.mpbackend.MultiprocessingBackend` (shared-memory
  worker processes) and
  :class:`~repro.runtime.mpbackend.ThreadPoolBackend` (parallel per-rank
  Gram stages).
* :class:`~repro.runtime.driver.ResilientLoop` — the single
  checkpoint/rollback/bit-exact-replay driver.
* :mod:`~repro.runtime.resilience` — checkpoints, NaN guards and
  recovery statistics (formerly ``repro.core.resilience``).

See ``docs/RUNTIME.md`` for the architecture walkthrough.
"""

from repro.runtime.backend import (
    BSPBackend,
    ExecutionBackend,
    SerialBackend,
    SPMDBackend,
    build_host_backend,
)
from repro.runtime.config import (
    BACKENDS,
    FAILURE_POLICIES,
    RuntimeConfig,
    parse_backend_spec,
    resolve_runtime,
)
from repro.runtime.dedup import ReplicatedCache
from repro.runtime.driver import ResilientLoop
from repro.runtime.mpbackend import MultiprocessingBackend, ThreadPoolBackend
from repro.runtime.supervisor import WorkerStatus, WorkerSupervisor
from repro.runtime.resilience import (
    ON_NAN_POLICIES,
    Checkpoint,
    NumericalGuard,
    RecoveryStats,
    RollbackRequested,
)

__all__ = [
    "BACKENDS",
    "BSPBackend",
    "Checkpoint",
    "ExecutionBackend",
    "FAILURE_POLICIES",
    "MultiprocessingBackend",
    "NumericalGuard",
    "ON_NAN_POLICIES",
    "RecoveryStats",
    "ReplicatedCache",
    "ResilientLoop",
    "RollbackRequested",
    "RuntimeConfig",
    "SPMDBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "WorkerStatus",
    "WorkerSupervisor",
    "build_host_backend",
    "parse_backend_spec",
    "resolve_runtime",
]
