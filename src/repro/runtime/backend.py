"""ExecutionBackend: one collective surface over serial/BSP/SPMD substrates.

The solver bodies (RC-SFISTA stages A–D, the SFISTA epoch loop, the PN
outer loop) are written once against this protocol; which substrate
executes them — and what it costs — is the backend's business:

* :class:`SerialBackend` — the degenerate P=1 case: collectives return
  the single contribution, nothing is charged, ``cost_summary()`` is
  ``None``. Iterates are bit-identical to a 1-rank BSP run.
* :class:`BSPBackend` — wraps :class:`~repro.distsim.bsp.BSPCluster`:
  lock-step collectives under the α-β-γ machine model with fault
  injection, sparse encodings and checkpoint/recovery charging.
* :class:`SPMDBackend` — wraps :class:`~repro.distsim.engine.SPMDEngine`
  for solvers expressed as per-rank generator programs. Host-side
  collectives run as one-shot rank programs on the persistent engine
  (counters and clocks accumulate across runs); rank-program solvers use
  :meth:`SPMDBackend.run_program` directly.

Cost accounting invariant: for a fixed backend and config, running a body
through this layer charges exactly what the hand-wired solver charged —
the golden traces in ``tests/golden/`` pin this.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.distsim import sparse_collectives as sc
from repro.distsim.bsp import BSPCluster
from repro.distsim.compress import CompressorBank, parse_compression_spec
from repro.distsim.engine import SPMDEngine
from repro.distsim.faults import FaultInjector, as_injector
from repro.distsim.trace import Trace
from repro.distsim.zerocopy import writable
from repro.exceptions import ValidationError
from repro.runtime.config import RuntimeConfig
from repro.runtime.dedup import ReplicatedCache

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "BSPBackend",
    "SPMDBackend",
    "build_host_backend",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """What a solver body may ask of its execution substrate.

    Collectives take one contribution per rank (host view) and return the
    replicated result; ``compute`` charges per-rank flops; ``checkpoint``/
    ``recover`` charge resilience traffic; the accessors expose the
    simulated clock, accumulated cost and trace for monitoring, telemetry
    and ``SolveResult`` assembly.
    """

    nranks: int
    # Epoch-keyed cache for post-collective work that is bit-identical
    # across ranks (see repro.runtime.dedup). Host-view backends disable
    # it (they compute shared work once by construction); the SPMD
    # backend enables it per the engine's dedup setting.
    replicated: ReplicatedCache
    # Whether map_ranks may run its closures concurrently. Solver bodies
    # consult this to give each rank private scratch (e.g. one
    # GramWorkspace per rank) instead of sharing mutable buffers.
    parallel_ranks: bool

    # -- collectives --------------------------------------------------- #
    def allreduce(self, contribs: Sequence[np.ndarray], label: str = "allreduce") -> np.ndarray: ...

    def reduce(self, contribs: Sequence[np.ndarray], root: int = 0, label: str = "reduce") -> np.ndarray: ...

    def broadcast(self, value: np.ndarray, root: int = 0, label: str = "bcast") -> np.ndarray: ...

    def barrier(self, label: str = "barrier") -> None: ...

    # -- compute + resilience charging --------------------------------- #
    def compute(self, flops: float | Sequence[float] | np.ndarray, label: str = "compute") -> None: ...

    def checkpoint(self, words: float) -> None: ...

    def recover(self, words: float) -> None: ...

    # -- per-rank execution -------------------------------------------- #
    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list: ...

    def close(self) -> None: ...

    # -- cost + clock accessors ---------------------------------------- #
    @property
    def elapsed(self) -> float: ...

    @property
    def last_comm_decision(self) -> str | None: ...

    @property
    def trace(self) -> Trace | None: ...

    @property
    def injector(self) -> FaultInjector | None: ...

    @property
    def machine_name(self) -> str: ...

    @property
    def allreduce_algorithm(self) -> str: ...

    def cost_summary(self) -> dict | None: ...


class SerialBackend:
    """P=1, zero-cost: the serial degenerate case of the protocol.

    Collectives return the lone contribution unchanged (bit-identical to
    a 1-rank BSP reduction in every ``comm`` mode), nothing is charged and
    no trace exists. ``last_comm_decision`` still resolves the configured
    encoding against the contribution's density so telemetry records stay
    meaningful.
    """

    nranks = 1
    parallel_ranks = False

    def __init__(
        self,
        comm: str = "dense",
        allreduce_algorithm: str = "recursive_doubling",
        comm_compress: str = "none",
        compress_seed: int = 0,
    ) -> None:
        if comm not in sc.COMM_MODES:
            raise ValidationError(f"comm must be one of {sc.COMM_MODES}, got {comm!r}")
        self.comm = comm
        self._allreduce_algorithm = allreduce_algorithm
        self._last_decision: str | None = None
        self.replicated = ReplicatedCache(enabled=False)
        # One rank still compresses its own contribution (stream 0): the
        # serial backend stays bit-identical to a 1-rank BSP run in every
        # comm_compress mode, not just the lossless ones.
        self.compress = parse_compression_spec(comm_compress)
        self._compressor = (
            CompressorBank(self.compress, seed=compress_seed)
            if self.compress.enabled
            else None
        )

    def _single(self, contribs: Sequence[np.ndarray], what: str) -> np.ndarray:
        if len(contribs) != 1:
            raise ValidationError(
                f"{what} on the serial backend needs exactly 1 contribution, "
                f"got {len(contribs)}"
            )
        return np.array(contribs[0], dtype=np.float64, copy=True)

    def allreduce(self, contribs: Sequence[np.ndarray], label: str = "allreduce") -> np.ndarray:
        out = self._single(contribs, "allreduce")
        if self._compressor is not None:
            self._last_decision = self.compress.kind
            return self._compressor.compress(out, label=label, stream=0)
        if self.comm == "dense":
            self._last_decision = "dense"
        else:
            density = float(np.count_nonzero(out)) / out.size if out.size else 0.0
            self._last_decision = sc.resolve_comm_mode(self.comm, union_density=density)
        return out

    def comm_state_snapshot(self) -> object:
        return self._compressor.snapshot() if self._compressor is not None else None

    def comm_state_restore(self, snap: object) -> None:
        if self._compressor is not None:
            self._compressor.restore(snap)

    def reduce(self, contribs: Sequence[np.ndarray], root: int = 0, label: str = "reduce") -> np.ndarray:
        return self._single(contribs, "reduce")

    def broadcast(self, value: np.ndarray, root: int = 0, label: str = "bcast") -> np.ndarray:
        return np.array(value, dtype=np.float64, copy=True)

    def barrier(self, label: str = "barrier") -> None:
        pass

    def compute(self, flops: float | Sequence[float] | np.ndarray, label: str = "compute") -> None:
        pass

    def checkpoint(self, words: float) -> None:
        pass

    def recover(self, words: float) -> None:
        pass

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        return [fn(p) for p in range(count)]

    def close(self) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return 0.0

    @property
    def last_comm_decision(self) -> str | None:
        return self._last_decision

    @property
    def trace(self) -> Trace | None:
        return None

    @property
    def injector(self) -> FaultInjector | None:
        return None

    @property
    def machine_name(self) -> str:
        return "serial"

    @property
    def allreduce_algorithm(self) -> str:
        return self._allreduce_algorithm

    def cost_summary(self) -> dict | None:
        return None


class BSPBackend:
    """Lock-step execution on a :class:`~repro.distsim.bsp.BSPCluster`.

    Thin by design: every call forwards to the cluster method that charges
    it, preserving labels, clock effects and trace events exactly as the
    pre-runtime solvers produced them.
    """

    parallel_ranks = False

    def __init__(self, cluster: BSPCluster, comm: str = "dense") -> None:
        if comm not in sc.COMM_MODES:
            raise ValidationError(f"comm must be one of {sc.COMM_MODES}, got {comm!r}")
        self.cluster = cluster
        self.comm = comm
        self.nranks = cluster.nranks
        # Host-view bodies compute shared post-collective work once by
        # construction, so there is nothing to deduplicate.
        self.replicated = ReplicatedCache(enabled=False)

    @classmethod
    def from_config(cls, config: RuntimeConfig, nranks: int) -> "BSPBackend":
        """Build or adopt the cluster a config describes.

        The faults/retry/metrics-versus-prebuilt-cluster exclusivity is
        already enforced by :class:`~repro.runtime.config.RuntimeConfig`;
        here only the rank count has to line up.
        """
        if config.cluster is not None:
            if config.cluster.nranks != nranks:
                raise ValidationError(
                    f"cluster has {config.cluster.nranks} ranks, expected {nranks}"
                )
            return cls(config.cluster, comm=config.comm)
        cluster = BSPCluster(
            nranks,
            config.machine,
            allreduce_algorithm=config.allreduce_algorithm,
            jitter_seed=config.jitter_seed,
            injector=as_injector(config.faults),
            retry=config.retry,
            collective_deadline=config.recv_timeout,
            metrics=config.metrics,
            dedup=config.dedup,
            comm_topology=config.comm_topology,
            comm_compress=config.comm_compress,
        )
        return cls(cluster, comm=config.comm)

    def allreduce(self, contribs: Sequence[np.ndarray], label: str = "allreduce") -> np.ndarray:
        return self.cluster.allreduce_comm(contribs, mode=self.comm, label=label)

    def reduce(self, contribs: Sequence[np.ndarray], root: int = 0, label: str = "reduce") -> np.ndarray:
        return self.cluster.reduce(contribs, root=root, label=label)

    def broadcast(self, value: np.ndarray, root: int = 0, label: str = "bcast") -> np.ndarray:
        return self.cluster.bcast(value, root=root, label=label)

    def barrier(self, label: str = "barrier") -> None:
        self.cluster.barrier(label=label)

    def compute(self, flops: float | Sequence[float] | np.ndarray, label: str = "compute") -> None:
        self.cluster.compute(flops, label=label)

    def checkpoint(self, words: float) -> None:
        self.cluster.checkpoint(words)

    def recover(self, words: float) -> None:
        self.cluster.recover(words)

    def comm_state_snapshot(self) -> object:
        return self.cluster.comm_state_snapshot()

    def comm_state_restore(self, snap: object) -> None:
        self.cluster.comm_state_restore(snap)

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        return [fn(p) for p in range(count)]

    def close(self) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return self.cluster.elapsed

    @property
    def last_comm_decision(self) -> str | None:
        return self.cluster.last_comm_decision

    @property
    def trace(self) -> Trace | None:
        return self.cluster.trace

    @property
    def injector(self) -> FaultInjector | None:
        return self.cluster.injector

    @property
    def machine_name(self) -> str:
        return self.cluster.machine.name

    @property
    def allreduce_algorithm(self) -> str:
        return self.cluster.allreduce_algorithm

    def cost_summary(self) -> dict | None:
        return self.cluster.cost.summary()


class SPMDBackend:
    """Execution on the generator-based :class:`SPMDEngine` mini-MPI.

    Rank-program solvers hand their program to :meth:`run_program`; the
    engine persists across runs, so a rerun after a heal keeps paying into
    the same counters and clocks (the failed attempt's cost stays on the
    books). The protocol's host-side collectives run as one-shot rank
    programs on that same engine.

    ``compute`` is deliberately a no-op: the SPMD solvers model
    communication only (their rank programs charge no host-side flops),
    and charging here would shift the simulated clocks every ``at_time``
    fault schedule is calibrated against.

    ``checkpoint``/``recover`` are no-ops too: in the SPMD model the
    checkpoint traffic is a *real* reduce the rank programs ship
    themselves, and recovery is a rerun whose collectives are genuinely
    re-charged — there is no out-of-band state transfer to bill.
    """

    parallel_ranks = False

    def __init__(self, engine: SPMDEngine, comm: str = "dense") -> None:
        if comm not in sc.COMM_MODES:
            raise ValidationError(f"comm must be one of {sc.COMM_MODES}, got {comm!r}")
        self.engine = engine
        self.comm = comm
        self.nranks = engine.nranks
        self.replicated = ReplicatedCache(enabled=engine.dedup)

    @classmethod
    def from_config(cls, config: RuntimeConfig, nranks: int) -> "SPMDBackend":
        if config.cluster is not None:
            raise ValidationError(
                "the SPMD backend builds its own engine; a prebuilt BSP cluster "
                "cannot be supplied"
            )
        engine = SPMDEngine(
            nranks,
            config.machine,
            allreduce_algorithm=config.allreduce_algorithm,
            injector=as_injector(config.faults),
            retry=config.retry,
            recv_timeout=config.recv_timeout,
            # The engine's trace is off by default; telemetry wants a timeline.
            trace=Trace() if config.telemetry is not None else None,
            metrics=config.metrics,
            dedup=config.dedup,
            comm_topology=config.comm_topology,
            comm_compress=config.comm_compress,
        )
        return cls(engine, comm=config.comm)

    def run_program(self, program: Callable, *args: Any, **kwargs: Any) -> list[Any]:
        """Run a rank program on the persistent engine (one attempt)."""
        return self.engine.run(program, *args, **kwargs)

    def allreduce(self, contribs: Sequence[np.ndarray], label: str = "allreduce") -> np.ndarray:
        comm = self.comm

        def prog(ctx):
            out = yield ctx.allreduce(contribs[ctx.rank], comm=comm)
            return out

        # With dedup on the engine fans out frozen views; the protocol
        # contract is a mutable host-side result, so take one copy here.
        return writable(self.engine.run(prog)[0])

    def reduce(self, contribs: Sequence[np.ndarray], root: int = 0, label: str = "reduce") -> np.ndarray:
        def prog(ctx):
            out = yield ctx.reduce(contribs[ctx.rank], root=root)
            return out

        return self.engine.run(prog)[root]

    def broadcast(self, value: np.ndarray, root: int = 0, label: str = "bcast") -> np.ndarray:
        def prog(ctx):
            out = yield ctx.bcast(value if ctx.rank == root else None, root=root)
            return out

        return self.engine.run(prog)[0]

    def barrier(self, label: str = "barrier") -> None:
        def prog(ctx):
            yield ctx.barrier()

        self.engine.run(prog)

    def compute(self, flops: float | Sequence[float] | np.ndarray, label: str = "compute") -> None:
        pass

    def checkpoint(self, words: float) -> None:
        pass

    def recover(self, words: float) -> None:
        pass

    def comm_state_snapshot(self) -> object:
        return self.engine.comm_state_snapshot()

    def comm_state_restore(self, snap: object) -> None:
        self.engine.comm_state_restore(snap)

    def map_ranks(self, fn: Callable[[int], Any], count: int) -> list:
        return [fn(p) for p in range(count)]

    def close(self) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return self.engine.elapsed

    @property
    def last_comm_decision(self) -> str | None:
        return self.engine.last_comm_decision

    @property
    def trace(self) -> Trace | None:
        return self.engine.trace

    @property
    def injector(self) -> FaultInjector | None:
        return self.engine.injector

    @property
    def machine_name(self) -> str:
        return self.engine.machine.name

    @property
    def allreduce_algorithm(self) -> str:
        return self.engine.allreduce_algorithm

    def cost_summary(self) -> dict | None:
        return self.engine.cost.summary()


def build_host_backend(config: RuntimeConfig, nranks: int) -> ExecutionBackend:
    """The host-view backend a config selects for lock-step solver bodies."""
    if config.backend == "serial":
        if nranks != 1:
            raise ValidationError(
                f"the serial backend runs exactly 1 rank, got nranks={nranks}; "
                "use backend='bsp' for multi-rank simulation"
            )
        if config.cluster is not None:
            raise ValidationError("the serial backend does not take a prebuilt cluster")
        return SerialBackend(
            comm=config.comm,
            allreduce_algorithm=config.allreduce_algorithm,
            comm_compress=config.comm_compress,
        )
    if config.backend in ("mp", "threads"):
        # Imported here: mpbackend subclasses BSPBackend from this module.
        from repro.runtime.mpbackend import MultiprocessingBackend, ThreadPoolBackend

        if config.backend == "mp":
            return MultiprocessingBackend.from_config(config, nranks)
        return ThreadPoolBackend.from_config(config, nranks)
    return BSPBackend.from_config(config, nranks)
