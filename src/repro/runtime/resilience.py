"""Runtime resilience primitives: checkpoints, numerical guards, stats.

The distributed solvers run on a substrate that can fail
(:mod:`repro.distsim.faults`). This module holds the pieces the
:class:`~repro.runtime.driver.ResilientLoop` uses to survive those
failures in-band:

* :class:`Checkpoint` — a deep snapshot of the iterate, momentum and RNG
  state at a round boundary. Restoring it and replaying is *bit-exact*:
  the RNG state makes the replayed rounds draw the same sample sets, so a
  recovered run converges to exactly the fault-free solution.
* :class:`NumericalGuard` — NaN/Inf screening of collective results with
  a configurable policy (``"raise"`` / ``"rollback"`` / ``"recompute"``).
* :class:`RecoveryStats` — counts of checkpoints, rollbacks, recomputes
  and momentum restarts, reported in ``SolveResult.meta["resilience"]``.

(Until the :mod:`repro.runtime` package existed these lived in
``repro.core.resilience``; that module remains as a re-export shim.)

Checkpoint and recovery *traffic* is charged by the substrate
(:meth:`repro.distsim.bsp.BSPCluster.checkpoint` /
:meth:`~repro.distsim.bsp.BSPCluster.recover`), tagged into the
``checkpoint_words`` / ``retry_words`` counters so robustness overhead is
visible in the α-β-γ reports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import NumericalFaultError, ValidationError

__all__ = [
    "ON_NAN_POLICIES",
    "Checkpoint",
    "NumericalGuard",
    "RecoveryStats",
    "RollbackRequested",
]

# ``on_nan`` solver knob: None disables screening (legacy behavior).
ON_NAN_POLICIES = ("raise", "rollback", "recompute")


class RollbackRequested(Exception):
    """Internal control-flow signal: a guard chose to roll back.

    Deliberately *not* a :class:`~repro.exceptions.ReproError` — it never
    escapes the solver that raised it.
    """

    def __init__(self, what: str) -> None:
        super().__init__(what)
        self.what = what


@dataclass(frozen=True)
class Checkpoint:
    """Deep snapshot of a solver's replayable state at a round boundary.

    ``arrays`` holds named iterate/momentum vectors (``w``, ``w_prev``,
    optionally ``anchor``/``full_grad``); ``scalars`` the plain-value
    state (momentum ``t_prev``, ``prev_obj``, loop counters);
    ``rng_state`` the numpy bit-generator state, so replayed rounds draw
    identical sample sets.
    """

    arrays: dict[str, np.ndarray]
    scalars: dict[str, Any]
    rng_state: dict[str, Any] | None
    history_len: int

    @classmethod
    def capture(
        cls,
        *,
        arrays: dict[str, np.ndarray],
        scalars: dict[str, Any],
        rng: np.random.Generator | None = None,
        history_len: int = 0,
    ) -> "Checkpoint":
        return cls(
            arrays={k: np.array(v, copy=True) for k, v in arrays.items() if v is not None},
            scalars=dict(scalars),
            rng_state=copy.deepcopy(rng.bit_generator.state) if rng is not None else None,
            history_len=int(history_len),
        )

    def restore_rng(self, rng: np.random.Generator) -> None:
        """Rewind *rng* to the captured state (no-op if none was captured)."""
        if self.rng_state is not None:
            rng.bit_generator.state = copy.deepcopy(self.rng_state)

    def array(self, name: str) -> np.ndarray:
        """A fresh copy of a checkpointed array (missing name is a bug)."""
        if name not in self.arrays:
            raise ValidationError(f"checkpoint has no array {name!r}")
        return self.arrays[name].copy()

    def get(self, name: str) -> np.ndarray | None:
        """Copy of an optional checkpointed array, or None."""
        arr = self.arrays.get(name)
        return None if arr is None else arr.copy()

    @property
    def words(self) -> float:
        """State words to charge when shipping this checkpoint (8-byte)."""
        # Arrays dominate; RNG state and scalars ride along as a fixed
        # small header.
        return float(sum(a.size for a in self.arrays.values()) + 8)


class NumericalGuard:
    """NaN/Inf screen over collective results and monitored objectives.

    ``policy=None`` disables the guard entirely — :meth:`screen` always
    reports clean, preserving the solvers' legacy divergence behavior.
    """

    def __init__(self, policy: str | None) -> None:
        if policy is not None and policy not in ON_NAN_POLICIES:
            raise ValidationError(
                f"on_nan must be one of {ON_NAN_POLICIES} or None, got {policy!r}"
            )
        self.policy = policy

    @property
    def enabled(self) -> bool:
        return self.policy is not None

    def screen(self, value: np.ndarray | float, what: str, stats: "RecoveryStats") -> bool:
        """Check *value*; True means "bad, and the policy is recompute".

        Clean values return False. For bad values: ``"raise"`` raises
        :class:`~repro.exceptions.NumericalFaultError`, ``"rollback"``
        raises :class:`RollbackRequested` (caught by the solver's recovery
        loop), ``"recompute"`` returns True so the caller re-issues the
        producing operation.
        """
        if self.policy is None or bool(np.all(np.isfinite(value))):
            return False
        stats.numerical_faults += 1
        if self.policy == "raise":
            raise NumericalFaultError(
                f"non-finite values detected in {what} (policy 'raise')"
            )
        if self.policy == "rollback":
            raise RollbackRequested(what)
        return True


@dataclass
class RecoveryStats:
    """What the resilient runtime actually did, for ``meta['resilience']``."""

    checkpoints: int = 0
    rollbacks: int = 0
    rank_failures_recovered: int = 0
    numerical_faults: int = 0
    recomputes: int = 0
    momentum_restarts: int = 0
    healed_ranks: list[int] = field(default_factory=list)
    # Real-process elasticity (mp backend): supervised respawns of dead
    # worker processes, and pool shrinks P→P′ with column repartitioning.
    respawns: int = 0
    shrinks: int = 0
    final_nranks: int | None = None

    def as_meta(self) -> dict[str, Any]:
        return {
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "rank_failures_recovered": self.rank_failures_recovered,
            "numerical_faults": self.numerical_faults,
            "recomputes": self.recomputes,
            "momentum_restarts": self.momentum_restarts,
            "healed_ranks": sorted(set(self.healed_ranks)),
            "respawns": self.respawns,
            "shrinks": self.shrinks,
            "final_nranks": self.final_nranks,
        }
