"""RuntimeConfig: one validated bundle for the cross-cutting solver knobs.

Every distributed solver used to copy-paste the same ~12 keyword
arguments — machine/cluster selection, collective encoding, fault
injection, retry policy, checkpointing, NaN screening, telemetry and
metrics — and re-validate them by hand. :class:`RuntimeConfig` is the one
frozen dataclass that carries them all, validates them in one place, and
is accepted by every distributed solver as ``runtime=``::

    from repro.runtime import RuntimeConfig

    cfg = RuntimeConfig(machine="comet_paper", comm="auto",
                        checkpoint_every=2, on_nan="rollback")
    rc_sfista_distributed(problem, 16, k=4, runtime=cfg)

The individual keyword arguments remain accepted for backward
compatibility; passing the resilience/observability ones triggers a
:class:`DeprecationWarning` steering callers to ``runtime=``. Passing
``runtime=`` *and* explicit legacy values together is rejected — there
must be exactly one source of truth.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.distsim.collectives import COMM_TOPOLOGIES
from repro.distsim.compress import parse_compression_spec
from repro.distsim.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.distsim.machine import HierarchicalMachine, MachineSpec, get_machine
from repro.distsim.sparse_collectives import COMM_MODES
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryCallback
from repro.runtime.resilience import ON_NAN_POLICIES
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.distsim.bsp import BSPCluster

__all__ = [
    "BACKENDS",
    "FAILURE_POLICIES",
    "RuntimeConfig",
    "parse_backend_spec",
    "resolve_runtime",
]

# Host-driven execution substrates build_host_backend can produce. The SPMD
# engine is not selected through this knob: rank-program solvers construct
# an SPMDBackend directly (the program structure is part of the algorithm).
# "mp" and "threads" are the real-parallelism substrates of
# repro.runtime.mpbackend: worker processes over shared memory, and a BSP
# cluster whose per-rank compute closures run on a thread pool.
BACKENDS = ("bsp", "serial", "mp", "threads")

# What the mp backend does when a real worker process dies or hangs:
# "fail_fast" tears down and raises ConvergenceError (with .partial),
# "respawn" restarts the dead rank and replays from the last checkpoint
# (bit-identical final iterate), "shrink" drops the dead rank, repartitions
# the columns over the survivors and resumes from the checkpoint at P′ < P.
FAILURE_POLICIES = ("fail_fast", "respawn", "shrink")


def _knob(default, surface: str):
    """A config field tagged with the surface it belongs to.

    The tag is load-bearing: ``_DEPRECATED_KWARGS`` (the legacy kwargs
    that warrant a deprecation nudge) is *derived* from the
    ``resilience``/``observability`` tags below, and the kwargs-drift
    guard test regenerates its expectations from the same metadata — a
    new field cannot silently land in the wrong surface.
    """
    if surface not in ("shape", "resilience", "observability", "perf"):
        raise ValueError(f"unknown config surface {surface!r}")
    return dataclasses.field(default=default, metadata={"surface": surface})


@dataclass(frozen=True)
class RuntimeConfig:
    """Cross-cutting execution knobs shared by every distributed solver.

    Simulation shape
    ----------------
    backend:
        ``"bsp"`` (simulated cluster, the default), ``"serial"`` (the
        degenerate single-rank backend: no cluster, zero cost, bit-
        identical iterates to a 1-rank BSP run), ``"mp"`` (persistent
        worker processes over ``multiprocessing.shared_memory``) or
        ``"threads"`` (BSP collectives plus a thread pool for the
        GIL-releasing per-rank Gram stages). The real-parallelism
        backends keep iterates and charged costs bit-identical to BSP;
        only measured wall-clock changes (docs/RUNTIME.md).
    mp_timeout:
        Deadline in seconds for any single worker round-trip on the
        ``"mp"`` backend; a crashed or hung worker is detected within
        this deadline (plus any ``retry`` backoff grace) and handled per
        ``mp_failure_policy``. Ignored by the other backends.
    mp_failure_policy:
        What the ``"mp"`` backend does when a real worker dies or hangs:
        ``"fail_fast"`` (default) tears down and raises
        :class:`~repro.exceptions.ConvergenceError` with ``.partial``
        carrying the last checkpointed state; ``"respawn"`` restarts the
        dead rank, restores the last checkpoint and replays
        (bit-identical final iterate); ``"shrink"`` drops the dead rank,
        deterministically repartitions the columns over the P′ survivors
        and resumes from the checkpoint. See docs/RESILIENCE.md.
    machine / allreduce_algorithm / jitter_seed:
        The α-β-γ machine model, collective algorithm and per-rank compute
        jitter of the simulated cluster.
    loss / penalty:
        The objective overrides of the model layer
        (:mod:`repro.core.model`): a loss name (``"squared"``,
        ``"logistic"``, ``"squared_hinge"``) or :class:`SmoothLoss`
        instance, and a penalty spec (``"l1"``,
        ``"elastic_net[:l2=r]"``, ``"group_l1[:size=n]"``), prebuilt
        :class:`Regularizer` or bare :class:`ProximalOperator`. ``None``
        (default) inherits the problem's own pair — for the classic
        squared+l1 problems the solvers then take their historical
        byte-identical code path. Specs are validated here, at
        config-build time; the penalty strength is always the problem's
        ``lam``.
    comm:
        Collective payload encoding: ``"dense"``, ``"sparse"``
        (index+value, O(nnz_union) words) or ``"auto"`` (per-phase
        stream-and-switch). Iterates are bit-identical across modes.
    comm_topology:
        Collective schedule (docs/COLLECTIVES.md): ``"flat"`` (default,
        the legacy single-level tournament) or ``"hier"`` (two-level
        node-local + inter-node schedule; needs a hierarchical machine
        with a power-of-two ``node_size``, e.g. ``"comet_4ppn"`` or
        ``"fat_tree"``). Without compression the hierarchical combine
        tree is bit-identical to the flat one.
    comm_compress:
        Lossy contribution compression: ``"none"`` (default),
        ``"topk:frac=F"`` (top-k sparsification with error feedback) or
        ``"quant:bits=B"`` (stochastic-rounding quantization).
        Compressed iterates differ from the uncompressed baseline but
        are bit-identical across backends for a fixed setting.
    cluster:
        A prebuilt :class:`~repro.distsim.bsp.BSPCluster` to run on
        (costs accumulate). Mutually exclusive with ``faults``/``retry``/
        ``recv_timeout``/``metrics`` — configure those on the cluster.

    Resilience
    ----------
    faults / retry / recv_timeout:
        Deterministic fault plan (or prebuilt injector), torn-collective
        retry policy, and collective arrival-skew deadline.
    checkpoint_every:
        Checkpoint the solver state every this many communication rounds
        (0 disables periodic checkpoints; a free initial checkpoint always
        exists, so crash recovery restarts from scratch).
    on_nan:
        NaN/Inf screening policy: ``None`` (off), ``"raise"``,
        ``"rollback"`` or ``"recompute"``.
    max_recoveries:
        Rollbacks/recomputes tolerated before the failure propagates.
    adaptive_restart:
        Reset FISTA momentum whenever the monitored objective increases.

    Observability
    -------------
    telemetry:
        A :class:`~repro.obs.telemetry.TelemetryCallback` receiving run
        start/end and one record per inner iteration. Strictly out of
        band: attaching it never changes iterates, costs or traces.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` the substrate
        publishes into (mutually exclusive with a prebuilt ``cluster``).

    Host performance (simulation-invisible)
    ---------------------------------------
    dedup:
        Zero-copy collective fan-out and replicated-work deduplication
        (see docs/PERFORMANCE.md). ``None`` (default) defers to the
        ``REPRO_NO_DEDUP`` environment escape hatch; ``True``/``False``
        force it. Iterates, golden traces and charged α-β-γ costs are
        bit-identical either way — only host wall-clock changes.
        Mutually exclusive with a prebuilt ``cluster`` (configure
        ``dedup=`` on the cluster instead).
    gram_workspace:
        Reuse preallocated :class:`~repro.sparse.ops.GramWorkspace`
        buffers in solver inner loops instead of allocating per
        iteration. Bit-identical results; on by default.
    """

    backend: str = _knob("bsp", "shape")
    machine: str | MachineSpec = _knob("comet_effective", "shape")
    allreduce_algorithm: str = _knob("recursive_doubling", "shape")
    loss: object = _knob(None, "shape")
    penalty: object = _knob(None, "shape")
    comm: str = _knob("dense", "shape")
    comm_topology: str = _knob("flat", "shape")
    comm_compress: str = _knob("none", "shape")
    jitter_seed: RandomState = _knob(None, "shape")
    cluster: "BSPCluster | None" = _knob(None, "shape")
    mp_timeout: float = _knob(120.0, "shape")
    mp_failure_policy: str = _knob("fail_fast", "resilience")
    faults: FaultPlan | FaultInjector | None = _knob(None, "resilience")
    retry: RetryPolicy | None = _knob(None, "resilience")
    recv_timeout: float | None = _knob(None, "resilience")
    checkpoint_every: int = _knob(0, "resilience")
    on_nan: str | None = _knob(None, "resilience")
    max_recoveries: int = _knob(3, "resilience")
    adaptive_restart: bool = _knob(False, "resilience")
    telemetry: TelemetryCallback | None = _knob(None, "observability")
    metrics: MetricsRegistry | None = _knob(None, "observability")
    dedup: bool | None = _knob(None, "perf")
    gram_workspace: bool = _knob(True, "perf")

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.comm not in COMM_MODES:
            raise ValidationError(
                f"comm must be one of {COMM_MODES}, got {self.comm!r}"
            )
        if self.comm_topology not in COMM_TOPOLOGIES:
            raise ValidationError(
                f"comm_topology must be one of {COMM_TOPOLOGIES}, "
                f"got {self.comm_topology!r}"
            )
        # Rejects malformed specs ("topk:frac=2", "gzip", ...) at
        # config-build time; the concrete CompressorBank is built by the
        # backend/cluster that owns the collective state.
        parse_compression_spec(self.comm_compress)
        if self.comm_topology == "hier":
            machine = get_machine(self.machine)
            node_size = getattr(machine, "node_size", 1)
            if not isinstance(machine, HierarchicalMachine) or node_size <= 1:
                raise ValidationError(
                    "comm_topology='hier' needs a hierarchical machine with "
                    "node_size > 1 (e.g. machine='comet_4ppn' or "
                    f"machine='fat_tree'), got {machine.name!r}"
                )
            if node_size & (node_size - 1):
                raise ValidationError(
                    "comm_topology='hier' requires a power-of-two node_size "
                    "so the node-local tournaments tile the flat combine "
                    f"tree exactly, got node_size={node_size}"
                )
        if self.loss is not None or self.penalty is not None:
            # Imported lazily: repro.core.model must not load while
            # repro.runtime is still mid-import (the solvers in
            # repro.core.__init__ import repro.runtime back).
            from repro.core.model import (
                Regularizer,
                SmoothLoss,
                make_loss,
                parse_penalty_spec,
            )
            from repro.core.proximal import ProximalOperator

            if self.loss is not None and not isinstance(self.loss, SmoothLoss):
                make_loss(self.loss)  # rejects unknown names at config-build time
            if self.penalty is not None and not isinstance(
                self.penalty, (Regularizer, ProximalOperator)
            ):
                parse_penalty_spec(self.penalty)
        if self.on_nan is not None and self.on_nan not in ON_NAN_POLICIES:
            raise ValidationError(
                f"on_nan must be one of {ON_NAN_POLICIES} or None, got {self.on_nan!r}"
            )
        if self.checkpoint_every < 0:
            raise ValidationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.max_recoveries < 0:
            raise ValidationError(
                f"max_recoveries must be >= 0, got {self.max_recoveries}"
            )
        if not (self.mp_timeout > 0 and self.mp_timeout != float("inf")):
            raise ValidationError(
                f"mp_timeout must be finite and > 0, got {self.mp_timeout}"
            )
        if self.mp_failure_policy not in FAILURE_POLICIES:
            raise ValidationError(
                f"mp_failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.mp_failure_policy!r}"
            )
        if self.backend == "mp":
            if self.cluster is not None:
                raise ValidationError(
                    "the mp backend builds its own workers; a prebuilt BSP "
                    "cluster cannot be supplied"
                )
            if self.recv_timeout is not None:
                raise ValidationError(
                    "recv_timeout is a simulated-clock deadline; the mp "
                    "backend guards real round-trips with mp_timeout instead"
                )
            if isinstance(self.faults, FaultPlan) and (
                self.faults.drop_rate
                or self.faults.delay_rate
                or self.faults.collective_drop_rate
                or self.faults.drops
                or self.faults.delays
            ):
                raise ValidationError(
                    "p2p message drops/delays and torn collectives are "
                    "simulation-engine faults; the mp backend runs collectives "
                    "on real processes and supports crashes, stalls and "
                    "payload corruption only"
                )
        if self.cluster is not None:
            if (
                self.faults is not None
                or self.retry is not None
                or self.recv_timeout is not None
            ):
                raise ValidationError(
                    "configure faults/retry/recv_timeout on the supplied cluster, "
                    "not through the solver"
                )
            if self.metrics is not None:
                raise ValidationError(
                    "attach the metrics registry to the supplied cluster, "
                    "not through the solver"
                )
            if self.dedup is not None:
                raise ValidationError(
                    "configure dedup= on the supplied cluster, not through the solver"
                )
            if self.comm_topology != "flat" or self.comm_compress != "none":
                raise ValidationError(
                    "configure comm_topology/comm_compress on the supplied "
                    "cluster, not through the solver"
                )

    def replace(self, **changes) -> "RuntimeConfig":
        """A copy with *changes* applied (re-runs the validation)."""
        return dataclasses.replace(self, **changes)


_FIELD_DEFAULTS = {f.name: f.default for f in dataclasses.fields(RuntimeConfig)}

# Legacy kwargs that warrant a deprecation nudge — derived from the field
# surface tags, never hand-listed: exactly the resilience and observability
# knobs. The simulation-shape and host-perf knobs stay warning-free — they
# are equally valid through either path.
_DEPRECATED_KWARGS = frozenset(
    f.name
    for f in dataclasses.fields(RuntimeConfig)
    if f.metadata.get("surface") in ("resilience", "observability")
)


def parse_backend_spec(spec: str) -> tuple[str, int | None]:
    """Split a CLI backend spec ``"name"`` or ``"name:P"`` into its parts.

    ``"mp:4"`` → ``("mp", 4)``; ``"bsp"`` → ``("bsp", None)``. The rank
    suffix overrides ``--nranks`` at the call site; the bare name leaves
    the rank count alone. Unknown names and malformed suffixes are
    rejected here so the CLI error points at the flag, not the solver.
    """
    name, sep, suffix = spec.partition(":")
    if name not in BACKENDS:
        raise ValidationError(
            f"unknown backend {name!r}; choose from {BACKENDS} "
            "(optionally suffixed ':<nranks>', e.g. 'mp:4')"
        )
    if not sep:
        return name, None
    try:
        nranks = int(suffix)
    except ValueError:
        nranks = 0
    if nranks < 1:
        raise ValidationError(
            f"backend spec {spec!r}: the rank suffix must be a positive "
            "integer, e.g. 'mp:4'"
        )
    return name, nranks


def resolve_runtime(
    runtime: RuntimeConfig | None = None, **legacy
) -> RuntimeConfig:
    """Merge a ``runtime=`` config with per-solver legacy kwargs.

    Solvers call this with whatever subset of the legacy runtime kwargs
    their public signature still carries. Exactly one source wins:

    * ``runtime`` given and no legacy kwarg moved off its default — use
      the config as-is.
    * ``runtime`` given *and* legacy kwargs set — ambiguous, rejected.
    * legacy kwargs only — build a :class:`RuntimeConfig` from them
      (single validation path), warning once per call when any of the
      deprecated resilience/observability kwargs were used.
    """
    unknown = set(legacy) - set(_FIELD_DEFAULTS)
    if unknown:
        raise ValidationError(
            f"unknown runtime kwargs {sorted(unknown)}; valid fields are "
            f"{sorted(_FIELD_DEFAULTS)}"
        )
    moved = {k for k, v in legacy.items() if v != _FIELD_DEFAULTS[k]}
    if runtime is not None:
        if moved:
            raise ValidationError(
                "pass runtime knobs either through runtime=RuntimeConfig(...) or "
                f"as individual kwargs, not both (runtime= plus {sorted(moved)})"
            )
        return runtime
    deprecated = sorted(moved & _DEPRECATED_KWARGS)
    if deprecated:
        warnings.warn(
            f"passing {', '.join(deprecated)} as individual solver kwargs is "
            "deprecated; bundle them in runtime=RuntimeConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RuntimeConfig(**legacy)
