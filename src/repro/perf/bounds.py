"""Theoretical upper bounds for the RC-SFISTA parameters k and S (§4.2).

The paper derives, from the runtime model Eq. (24):

* Eq. (25): ``k ≤ α / (β d²)`` — overlap pays while latency dominates
  bandwidth. Worked example (§5.3): covtype (d=54) on Comet ⇒ k ≤ 2. ✓
* Eq. (26): ``k ≤ α N P log(P) / (γ [N d² m̄ f + S d² P])`` — overlap vs
  flops.
* Eq. (27): ``k·S ≤ α N log(P) / (γ d²)`` — the very-sparse limit (f→0).
  Worked example (§5.3): mnist (d=780), k=1, P=256, N=200 ⇒ S < 7. ✓
* Eq. (28): ``S ≤ β N log(P) / γ`` — substituting the Eq. (25) k.

``log`` is log₂ throughout (communication rounds), which reproduces both
worked examples in the paper.
"""

from __future__ import annotations

import math

from repro.distsim.machine import MachineSpec, get_machine
from repro.exceptions import ValidationError

__all__ = [
    "k_bound_latency_bandwidth",
    "k_bound_flops",
    "ks_bound_sparse",
    "s_bound",
    "recommend_k",
    "recommend_s",
]


def _log2p(P: int) -> float:
    if P < 1:
        raise ValidationError(f"P must be >= 1, got {P}")
    return math.log2(P) if P > 1 else 0.0


def k_bound_latency_bandwidth(machine: MachineSpec | str, d: int) -> float:
    """Eq. (25): k ≤ α/(βd²)."""
    m = get_machine(machine)
    if d <= 0:
        raise ValidationError(f"d must be positive, got {d}")
    if m.beta == 0:
        return math.inf
    return m.alpha / (m.beta * d * d)


def k_bound_flops(
    machine: MachineSpec | str, N: int, d: int, mbar: int, f: float, P: int, S: int = 1
) -> float:
    """Eq. (26): k ≤ αNP·log(P) / (γ[Nd²m̄f + Sd²P])."""
    m = get_machine(machine)
    if min(N, d, mbar, P, S) <= 0 or not (0.0 <= f <= 1.0):
        raise ValidationError("N, d, m̄, P, S must be positive and f in [0, 1]")
    denom = m.gamma * (N * d * d * mbar * f + S * d * d * P)
    if denom == 0:
        return math.inf
    return m.alpha * N * P * _log2p(P) / denom


def ks_bound_sparse(machine: MachineSpec | str, N: int, d: int, P: int) -> float:
    """Eq. (27): k·S ≤ αN·log(P)/(γd²) — the f → 0 limit of Eq. (26)."""
    m = get_machine(machine)
    if min(N, d, P) <= 0:
        raise ValidationError("N, d, P must be positive")
    if m.gamma == 0:
        return math.inf
    return m.alpha * N * _log2p(P) / (m.gamma * d * d)


def s_bound(machine: MachineSpec | str, N: int, P: int) -> float:
    """Eq. (28): S ≤ βN·log(P)/γ (k at its Eq. (25) bound)."""
    m = get_machine(machine)
    if min(N, P) <= 0:
        raise ValidationError("N, P must be positive")
    if m.gamma == 0:
        return math.inf
    return m.beta * N * _log2p(P) / m.gamma


def recommend_k(
    machine: MachineSpec | str,
    d: int,
    *,
    N: int | None = None,
    mbar: int | None = None,
    f: float | None = None,
    P: int | None = None,
    S: int = 1,
    k_min: int = 1,
    k_max: int = 1 << 16,
) -> int:
    """Integer k satisfying every applicable bound (≥ ``k_min``).

    Applies Eq. (25) always and Eq. (26) when the workload parameters are
    given. The paper notes (§5.3) that every k still reduces Eq. (24)
    runtime; this helper returns the *profitable-regime* bound, clamped to
    ``[k_min, k_max]``.
    """
    bound = k_bound_latency_bandwidth(machine, d)
    if None not in (N, mbar, f, P):
        bound = min(bound, k_bound_flops(machine, N, d, mbar, f, P, S))  # type: ignore[arg-type]
    if math.isinf(bound):
        return k_max
    return max(k_min, min(k_max, int(math.floor(bound)) if bound >= k_min else k_min))


def recommend_s(
    machine: MachineSpec | str, N: int, d: int, P: int, *, k: int = 1, s_min: int = 1, s_max: int = 64
) -> int:
    """Integer S from the k·S trade-off of Eq. (27), clamped to [s_min, s_max]."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    bound = ks_bound_sparse(machine, N, d, P) / k
    if math.isinf(bound):
        return s_max
    # Largest integer strictly below the bound (the paper states S < bound).
    s = int(math.ceil(bound)) - 1
    return max(s_min, min(s_max, s))
