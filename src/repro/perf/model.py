"""Closed-form cost model of SFISTA and RC-SFISTA (paper Table 1, Eq. 24).

Two levels of fidelity are provided:

* The **paper-literal** big-O expressions of Table 1 / Eq. (24), for
  qualitative reasoning and the parameter bounds of §4.2.
* The **detailed** per-iteration accounting that matches the simulator's
  exact charging (constants included), used by the Table 1 benchmark to
  verify that model and simulator agree *exactly* on message and word
  counts along the critical path.

Notation (paper): ``N`` total inner iterations, ``d`` features, ``m̄``
sampled columns per iteration, ``f`` fill fraction, ``P`` processors, ``k``
iteration-overlap factor, ``S`` Hessian-reuse inner steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distsim.collectives import ceil_log2, sparse_payload_words
from repro.distsim.machine import MachineSpec, get_machine
from repro.exceptions import ValidationError

__all__ = [
    "AlgorithmCosts",
    "sfista_costs",
    "rc_sfista_costs",
    "sfista_runtime",
    "rc_sfista_runtime",
    "predicted_speedup",
    "sparse_comm_words",
    "UPDATE_FLOPS_PER_STEP",
]

# Dense flops charged per Hessian-reuse inner step: g = H u - R is a d×d
# GEMV (2d²) plus O(d) vector work folded into the d² term's lower-order
# constant; see detailed_update_flops.
UPDATE_FLOPS_PER_STEP = 2.0


def _validate(N: int, d: int, P: int, k: int = 1, S: int = 1) -> None:
    if N <= 0 or d <= 0 or P <= 0 or k <= 0 or S <= 0:
        raise ValidationError(f"N, d, P, k, S must be positive (got {N}, {d}, {P}, {k}, {S})")
    if N % k:
        # The paper's Alg. 5 iterates n = 0..N/k; allow ragged final blocks
        # in the solvers but keep the model exact by requiring divisibility.
        raise ValidationError(f"model requires k | N (got N={N}, k={k})")


@dataclass(frozen=True)
class AlgorithmCosts:
    """Per-processor critical-path costs over a whole solve.

    ``latency`` counts messages (L), ``flops`` floating point operations
    (F), ``bandwidth`` words moved (W) — the three columns of Table 1.
    """

    latency: float
    flops: float
    bandwidth: float

    def time(self, machine: MachineSpec | str) -> float:
        """Eq. (7): T = γF + αL + βW."""
        m = get_machine(machine)
        return m.gamma * self.flops + m.alpha * self.latency + m.beta * self.bandwidth


# ---------------------------------------------------------------------- #
# detailed accounting (matches the simulator exactly for L and W)
# ---------------------------------------------------------------------- #
def hessian_flops_per_iteration(d: int, mbar: int, f: float, P: int) -> float:
    """Per-rank flops to form local H and R blocks each iteration.

    Sparse Gram formation charges ``2·Σ_s nnz(x_s)²``; with uniform fill the
    expectation is ``2·(m̄/P)·(d·f)²``, plus ``2·(m̄/P)·d·f`` for R. This is
    the expectation over sampling — exact counters depend on the realized
    sample and are compared with tolerance in the tests.
    """
    local = mbar / P
    return 2.0 * local * (d * f) ** 2 + 2.0 * local * d * f


def update_flops_per_step(d: int) -> float:
    """Flops per Hessian-reuse inner step: one d×d GEMV plus vector ops."""
    return UPDATE_FLOPS_PER_STEP * d * d + 8.0 * d


def sparse_comm_words(words: float, payload_density: float | None) -> float:
    """Wire size of a *words*-long allreduce payload under sparse encoding.

    *payload_density* is the fill fraction of the reduced payload (the
    union support over all ranks); ``None`` means the dense encoding. Uses
    the same :func:`~repro.distsim.collectives.sparse_payload_words`
    stream-and-switch rule the simulator charges, so model and simulator
    agree exactly on W in sparse mode too.
    """
    if payload_density is None:
        return float(words)
    if not (0.0 <= payload_density <= 1.0):
        raise ValidationError(f"payload_density must be in [0, 1], got {payload_density}")
    return sparse_payload_words(float(words), payload_density * float(words))


def sfista_costs(
    N: int,
    d: int,
    mbar: int,
    f: float,
    P: int,
    *,
    exact_words: bool = True,
    payload_density: float | None = None,
) -> AlgorithmCosts:
    """Per-processor costs of N iterations of distributed SFISTA.

    SFISTA allreduces the (d² + d)-word [H | R] block every iteration
    (recursive doubling ⇒ ⌈log₂P⌉ messages and (d²+d)·⌈log₂P⌉ words per
    iteration per rank) and performs one inner update per iteration.
    *payload_density* models the sparse-communication mode (see
    :func:`sparse_comm_words`).
    """
    _validate(N, d, P)
    log_p = ceil_log2(P)
    words_per_iter = sparse_comm_words(
        (d * d + d) if exact_words else d * d, payload_density
    )
    return AlgorithmCosts(
        latency=float(N * log_p),
        flops=N * (hessian_flops_per_iteration(d, mbar, f, P) + update_flops_per_step(d)),
        bandwidth=float(N * words_per_iter * log_p),
    )


def rc_sfista_costs(
    N: int,
    d: int,
    mbar: int,
    f: float,
    P: int,
    k: int,
    S: int,
    *,
    exact_words: bool = True,
    payload_density: float | None = None,
) -> AlgorithmCosts:
    """Per-processor costs of N inner iterations of RC-SFISTA.

    One allreduce of k·(d² + d) words every k iterations: latency shrinks by
    k, bandwidth is unchanged (Table 1, RC-SFISTA row). The Hessian-reuse
    loop multiplies the update flops by S. *payload_density* models the
    sparse-communication mode (see :func:`sparse_comm_words`).
    """
    _validate(N, d, P, k, S)
    log_p = ceil_log2(P)
    rounds = N // k
    words_per_round = sparse_comm_words(
        k * ((d * d + d) if exact_words else d * d), payload_density
    )
    return AlgorithmCosts(
        latency=float(rounds * log_p),
        flops=N * (hessian_flops_per_iteration(d, mbar, f, P) + S * update_flops_per_step(d)),
        bandwidth=float(rounds * words_per_round * log_p),
    )


# ---------------------------------------------------------------------- #
# paper-literal Eq. (24)
# ---------------------------------------------------------------------- #
def rc_sfista_runtime(
    machine: MachineSpec | str,
    N: int,
    d: int,
    mbar: int,
    f: float,
    P: int,
    k: int,
    S: int,
) -> float:
    """Eq. (24): T = γ(N d² m̄ f / P + S d²) + α N log(P)/k + β N d² log(P)."""
    _validate(N, d, P, k, S)
    m = get_machine(machine)
    log_p = math.log2(P) if P > 1 else 0.0
    flops = N * d * d * mbar * f / P + S * d * d
    latency = N * log_p / k
    bandwidth = N * d * d * log_p
    return m.gamma * flops + m.alpha * latency + m.beta * bandwidth


def sfista_runtime(
    machine: MachineSpec | str, N: int, d: int, mbar: int, f: float, P: int
) -> float:
    """Eq. (24) specialized to SFISTA (k = S = 1)."""
    return rc_sfista_runtime(machine, N, d, mbar, f, P, k=1, S=1)


def predicted_speedup(
    machine: MachineSpec | str,
    N: int,
    d: int,
    mbar: int,
    f: float,
    P: int,
    k: int,
    S: int = 1,
    *,
    N_rc: int | None = None,
) -> float:
    """Model-predicted speedup of RC-SFISTA(k, S) over SFISTA.

    ``N_rc`` allows the RC variant to need a different iteration count (the
    Hessian-reuse effect of §3.2); defaults to the same N.
    """
    t_base = sfista_runtime(machine, N, d, mbar, f, P)
    t_rc = rc_sfista_runtime(machine, N_rc if N_rc is not None else N, d, mbar, f, P, k, S)
    if t_rc <= 0:
        raise ValidationError("non-positive predicted RC-SFISTA runtime")
    return t_base / t_rc
