"""Analytic performance model: Table 1 costs, Eq. 24 runtime, Eqs. 25-28 bounds."""

from repro.perf.model import (
    AlgorithmCosts,
    sfista_costs,
    rc_sfista_costs,
    rc_sfista_runtime,
    sfista_runtime,
    predicted_speedup,
)
from repro.perf.bounds import (
    k_bound_latency_bandwidth,
    k_bound_flops,
    ks_bound_sparse,
    s_bound,
    recommend_k,
    recommend_s,
)
from repro.perf.report import format_table, format_series

__all__ = [
    "AlgorithmCosts",
    "sfista_costs",
    "rc_sfista_costs",
    "rc_sfista_runtime",
    "sfista_runtime",
    "predicted_speedup",
    "k_bound_latency_bandwidth",
    "k_bound_flops",
    "ks_bound_sparse",
    "s_bound",
    "recommend_k",
    "recommend_s",
    "format_table",
    "format_series",
]
