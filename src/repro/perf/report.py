"""Plain-text table and series formatting for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    """Render one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        # ``g`` already switches to scientific notation outside the
        # comfortable range, so one format string covers every magnitude.
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str | None = None
) -> str:
    """Render an aligned monospace table with a header rule."""
    str_rows = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Any], ys: Sequence[Any], *, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one (x, y) series as two aligned columns."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values")
    return format_table([x_label, y_label], list(zip(xs, ys)), title=f"series: {name}")
